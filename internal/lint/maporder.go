package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for ... range` over a map whose body lets the
// random iteration order leak into results: appending to a slice that
// is never sorted afterwards, writing output or feeding a
// histogram/report mid-iteration, accumulating floating-point sums
// (float addition is not associative, so the rounding depends on
// visit order), or selecting a key into an outer variable (ties in
// argmax-style reductions resolve differently run to run).
//
// The fix is to iterate over sorted keys; a range whose appends are
// followed by a sort of the same slice in the enclosing function is
// accepted as already ordered.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `flag map iteration whose order can reach output or statistics:
append-without-sort, mid-iteration writes, float accumulation, and
key selection into outer variables`,
	Run: runMapOrder,
}

// outputFmtFuncs are fmt functions that emit directly to a sink.
var outputFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// statSinkMethods are methods that fold a value into an accumulator
// whose result depends on insertion order (histograms, datasets,
// encoders).
var statSinkMethods = map[string]bool{
	"Add": true, "AddW": true, "AddAll": true, "Observe": true,
	"Record": true, "Encode": true,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncMapOrder(pass, body)
			}
			return true
		})
	}
}

func checkFuncMapOrder(pass *Pass, body *ast.BlockStmt) {
	sorts := sortedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested closures get their own visit
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rs, sorts)
		return true
	})
}

// sortCall records one "sort this slice" call site.
type sortCall struct {
	obj types.Object
	pos token.Pos
}

// sortedSlices finds every sort.*/slices.Sort* call in the function
// whose argument is a plain identifier, possibly wrapped in a
// one-argument conversion (sort.Sort(byStart(out))).
func sortedSlices(pass *Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		arg := call.Args[0]
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		if ident, ok := arg.(*ast.Ident); ok {
			if obj := pass.Info.Uses[ident]; obj != nil {
				out = append(out, sortCall{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, sorts []sortCall) {
	keyObj := declaredObj(pass, rs.Key)
	inRange := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
	}
	sortedAfter := func(obj types.Object) bool {
		for _, s := range sorts {
			if s.obj == obj && s.pos >= rs.End() {
				return true
			}
		}
		return false
	}
	usesKey := func(e ast.Expr) bool {
		if keyObj == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
				found = true
			}
			return !found
		})
		return found
	}
	isMapIndex := func(e ast.Expr) bool {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return false
		}
		tv, ok := pass.Info.Types[ix.X]
		if !ok {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				// append into an outer slice: fine only if that slice
				// is sorted after the loop.
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) && i < len(st.Lhs) {
					if ident, ok := st.Lhs[i].(*ast.Ident); ok {
						obj := pass.Info.Uses[ident]
						if obj == nil {
							obj = pass.Info.Defs[ident]
						}
						if obj != nil && !sortedAfter(obj) {
							pass.Reportf(st.Pos(), "append to %s in map-iteration order with no subsequent sort; iterate over sorted keys or sort %s before use", ident.Name, ident.Name)
						}
					}
				}
			}
			if st.Tok == token.DEFINE {
				return true
			}
			// Key escaping to an outer variable: argmax-style
			// reductions resolve ties in random order.
			for i, lhs := range st.Lhs {
				if isMapIndex(lhs) {
					continue
				}
				rhs := st.Rhs[0]
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				// Appends are judged by the sort-aware rule above.
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					continue
				}
				if usesKey(rhs) {
					pass.Reportf(st.Pos(), "map key %s escapes the loop in nondeterministic iteration order; iterate over sorted keys", keyObj.Name())
					break
				}
			}
			// Float accumulation: addition order changes the rounding.
			if st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN || st.Tok == token.MUL_ASSIGN || st.Tok == token.QUO_ASSIGN {
				lhs := st.Lhs[0]
				if !isMapIndex(lhs) && isFloat(pass.typeOf(lhs)) {
					if ident, ok := lhs.(*ast.Ident); !ok || !inRange(pass.Info.Uses[ident]) {
						pass.Reportf(st.Pos(), "floating-point accumulation in map-iteration order is not bit-deterministic; iterate over sorted keys")
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, kind := sinkCall(pass, call); kind != "" {
					pass.Reportf(st.Pos(), "%s feeds %s in map-iteration order; iterate over sorted keys", name, kind)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if usesKey(res) {
					pass.Reportf(st.Pos(), "map key %s returned from nondeterministic iteration order; iterate over sorted keys", keyObj.Name())
				}
			}
		}
		return true
	})
}

// sinkCall classifies a call as an output or statistics sink.
func sinkCall(pass *Pass, call *ast.CallExpr) (name, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() == "fmt" && outputFmtFuncs[sel.Sel.Name] {
				return "fmt." + sel.Sel.Name, "output"
			}
			return "", ""
		}
	}
	if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if statSinkMethods[sel.Sel.Name] {
			return sel.Sel.Name, "a statistics accumulator"
		}
		if len(sel.Sel.Name) > 5 && sel.Sel.Name[:5] == "Write" || sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString" {
			return sel.Sel.Name, "output"
		}
	}
	return "", ""
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[ident].(*types.Builtin)
	return isBuiltin
}

// declaredObj returns the object bound by a range clause variable.
func declaredObj(pass *Pass, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[ident]; obj != nil {
		return obj
	}
	return pass.Info.Uses[ident]
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
