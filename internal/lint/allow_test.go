package lint

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseAllowDirective pins both accepted syntaxes and the
// degenerate forms allowcheck later rejects.
func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
		reason  string
		ok      bool
	}{
		{"//lint:allow(floateq) sort comparator", []string{"floateq"}, "sort comparator", true},
		{"//lint:allow(simpurity,detflow) fan-out stays above the sim", []string{"simpurity", "detflow"}, "fan-out stays above the sim", true},
		{"//lint:allow floateq legacy reason text", []string{"floateq"}, "legacy reason text", true},
		{"//lint:allow(floateq)", []string{"floateq"}, "", true},
		{"//lint:allow(floateq", []string{"floateq"}, "", true}, // unclosed: recognized, reasonless
		{"//lint:allow", nil, "", true}, // bare: nameless, reasonless
		{"//lint:allowance is a different word", []string{"ance"}, "is a different word", true},
		{"// regular comment", nil, "", false},
		{"//lint:ignore foo bar", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := parseAllowDirective(c.comment)
		if ok != c.ok || reason != c.reason || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseAllowDirective(%q) = (%v, %q, %v), want (%v, %q, %v)",
				c.comment, names, reason, ok, c.names, c.reason, c.ok)
		}
	}
}

// TestAllowCheck runs floateq over the directive-hygiene corpus and
// asserts the exact finding set: which directives are flagged, for
// what, and which floateq findings survive unsuppressed.
func TestAllowCheck(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/allowcheck")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	// FloatEq's Match scopes it to the statistics packages; rebind the
	// same Run under the same name so it fires on testdata.
	floateq := &Analyzer{Name: FloatEq.Name, Doc: FloatEq.Doc, Run: FloatEq.Run}
	diags := Run(pkgs, []*Analyzer{floateq})

	type want struct {
		analyzer string
		frag     string
	}
	wants := []want{
		{"allowcheck", "has no reason"},                   // reasonless()
		{"allowcheck", `unknown analyzer "nosuchcheck"`},  // unknown()
		{"floateq", "floating-point == comparison"},       // unknown(): not suppressed
		{"allowcheck", "stale allow: no floateq finding"}, // stale()
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d findings, want %d", len(diags), len(wants))
	}
	// Run sorts by position; the wants above are listed in source order.
	for i, w := range wants {
		d := diags[i]
		if d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.frag) {
			t.Errorf("finding %d = %s, want analyzer %q containing %q", i, d, w.analyzer, w.frag)
		}
	}
}

// TestAllowCheckStaleScope pins that staleness is only judged for
// analyzers in the current run set: the multi() directive names
// simpurity, which does not run here, and must not be called stale
// for it.
func TestAllowCheckStaleScope(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/allowcheck")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	simpurity := &Analyzer{Name: SimPurity.Name, Doc: SimPurity.Doc, Run: SimPurity.Run}
	floateq := &Analyzer{Name: FloatEq.Name, Doc: FloatEq.Doc, Run: FloatEq.Run}
	diags := Run(pkgs, []*Analyzer{floateq, simpurity})
	for _, d := range diags {
		if strings.Contains(d.Message, "stale allow: no simpurity") &&
			strings.Contains(d.Pos.Filename, "allowcheck") {
			// multi() names simpurity with nothing to suppress; now that
			// simpurity IS in the run set, it is legitimately stale.
			return
		}
	}
	t.Errorf("expected the multi() directive to go stale for simpurity once simpurity runs")
}
