// Package posixio provides the simulated POSIX I/O layer: a file
// descriptor table and open/read/write/seek/fsync/close calls executed
// against the lustre client of the calling task's node. This is the
// call surface that the IPM-I/O tracing layer (package ipmio)
// intercepts — the stand-in for wrapping libc with the GNU linker's
// -wrap mechanism on a real system.
package posixio

import (
	"errors"
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/lustre"
	"ensembleio/internal/sim"
)

// Open flags, mirroring the POSIX constants the workloads need.
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
)

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Errors returned by the layer.
var (
	ErrBadFD     = errors.New("posixio: bad file descriptor")
	ErrNotExist  = errors.New("posixio: no such file")
	ErrReadOnly  = errors.New("posixio: fd not open for writing")
	ErrWriteOnly = errors.New("posixio: fd not open for reading")
)

// System is one process-wide view of the mounted file system.
type System struct {
	FS *lustre.FS
}

// NewSystem mounts the POSIX layer over a lustre file system.
func NewSystem(fs *lustre.FS) *System { return &System{FS: fs} }

// Task is the per-rank I/O context: its node's client plus an fd
// table. All calls must be made from the task's simulated process.
type Task struct {
	Rank int
	sys  *System
	node *cluster.Node
	cl   *lustre.Client
	fds  map[int]*fd
	next int
}

type fd struct {
	num    int
	file   *lustre.File
	path   string
	offset int64
	flags  int
	read   *lustre.ReadState
}

// NewTask creates the I/O context for a rank placed on the given node.
func (s *System) NewTask(rank int, node *cluster.Node) *Task {
	return &Task{
		Rank: rank,
		sys:  s,
		node: node,
		cl:   s.FS.ClientFor(node),
		fds:  make(map[int]*fd),
		next: 3, // 0-2 reserved, as in POSIX
	}
}

// Node returns the task's compute node.
func (t *Task) Node() *cluster.Node { return t.node }

// Open opens (and with OCreat, creates) path, charging one metadata
// operation. It returns the new descriptor number.
func (t *Task) Open(p *sim.Proc, path string, flags int) (int, error) {
	f := t.sys.FS.Lookup(path)
	if f == nil {
		if flags&OCreat == 0 {
			return -1, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		f = t.sys.FS.Create(path)
	} else if flags&OTrunc != 0 {
		f.Size = 0
	}
	t.sys.FS.MDSOp(p, 0)
	d := &fd{num: t.next, file: f, path: path, flags: flags, read: lustre.NewReadState()}
	t.fds[d.num] = d
	t.next++
	return d.num, nil
}

// Close releases the descriptor, charging one metadata operation.
func (t *Task) Close(p *sim.Proc, num int) error {
	if _, ok := t.fds[num]; !ok {
		return ErrBadFD
	}
	delete(t.fds, num)
	t.sys.FS.MDSOp(p, 0)
	return nil
}

// Write writes n bytes at the current offset and advances it. Writes
// at or below the profile's SmallIOBytes threshold travel the
// serialized metadata/small-I/O path, as sub-page shared-file writes
// do on the real system.
func (t *Task) Write(p *sim.Proc, num int, n int64) (int64, error) {
	d, err := t.writable(num)
	if err != nil {
		return 0, err
	}
	t.writeAt(p, d, d.offset, n)
	d.offset += n
	return n, nil
}

// Pwrite writes n bytes at an explicit offset without moving the fd
// offset.
func (t *Task) Pwrite(p *sim.Proc, num int, offset, n int64) (int64, error) {
	d, err := t.writable(num)
	if err != nil {
		return 0, err
	}
	t.writeAt(p, d, offset, n)
	return n, nil
}

func (t *Task) writeAt(p *sim.Proc, d *fd, offset, n int64) {
	if n <= t.sys.FS.Cl.Prof.SmallIOBytes {
		t.sys.FS.SmallWrite(p, d.file, offset, n)
		return
	}
	t.cl.Write(p, d.file, offset, n)
}

// Read reads up to n bytes at the current offset, returning the number
// actually read (short at EOF) and advancing the offset.
func (t *Task) Read(p *sim.Proc, num int, n int64) (int64, error) {
	d, err := t.readable(num)
	if err != nil {
		return 0, err
	}
	got := t.readAt(p, d, d.offset, n)
	d.offset += got
	return got, nil
}

// Pread reads at an explicit offset without moving the fd offset.
func (t *Task) Pread(p *sim.Proc, num int, offset, n int64) (int64, error) {
	d, err := t.readable(num)
	if err != nil {
		return 0, err
	}
	return t.readAt(p, d, offset, n), nil
}

func (t *Task) readAt(p *sim.Proc, d *fd, offset, n int64) int64 {
	if offset >= d.file.Size {
		return 0
	}
	if offset+n > d.file.Size {
		n = d.file.Size - offset
	}
	if n <= 0 {
		return 0
	}
	t.cl.Read(p, d.file, d.read, offset, n)
	return n
}

// Seek repositions the descriptor offset and returns the new offset.
// Seeking is a client-local operation and costs no simulated time.
func (t *Task) Seek(num int, offset int64, whence int) (int64, error) {
	d, ok := t.fds[num]
	if !ok {
		return 0, ErrBadFD
	}
	switch whence {
	case SeekSet:
		d.offset = offset
	case SeekCur:
		d.offset += offset
	case SeekEnd:
		d.offset = d.file.Size + offset
	default:
		return 0, fmt.Errorf("posixio: bad whence %d", whence)
	}
	if d.offset < 0 {
		d.offset = 0
	}
	return d.offset, nil
}

// Fsync flushes the node's write-back cache and outstanding writes.
func (t *Task) Fsync(p *sim.Proc, num int) error {
	if _, ok := t.fds[num]; !ok {
		return ErrBadFD
	}
	t.cl.Fsync(p)
	return nil
}

// Path returns the path an open descriptor refers to — the fd-to-file
// lookup table IPM-I/O uses to associate events with files.
func (t *Task) Path(num int) (string, bool) {
	d, ok := t.fds[num]
	if !ok {
		return "", false
	}
	return d.path, true
}

// Offset returns the descriptor's current offset.
func (t *Task) Offset(num int) (int64, bool) {
	d, ok := t.fds[num]
	if !ok {
		return 0, false
	}
	return d.offset, true
}

func (t *Task) writable(num int) (*fd, error) {
	d, ok := t.fds[num]
	if !ok {
		return nil, ErrBadFD
	}
	if d.flags&(OWronly|ORdwr) == 0 {
		return nil, ErrReadOnly
	}
	return d, nil
}

func (t *Task) readable(num int) (*fd, error) {
	d, ok := t.fds[num]
	if !ok {
		return nil, ErrBadFD
	}
	if d.flags&OWronly != 0 && d.flags&ORdwr == 0 {
		return nil, ErrWriteOnly
	}
	return d, nil
}
