package posixio

import (
	"errors"
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/lustre"
	"ensembleio/internal/sim"
)

func testSystem() (*sim.Engine, *cluster.Cluster, *System) {
	eng := sim.NewEngine()
	prof := cluster.Franklin()
	prof.NoiseSigma = 0
	prof.StragglerProb = 0
	prof.BackgroundMeanMBps = 0
	prof.ConflictProbPerWriterPerOST = 0
	cl := cluster.New(eng, prof, 2, 11)
	return eng, cl, NewSystem(lustre.NewFS(cl))
}

func TestOpenCreateWriteReadRoundTrip(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, err := task.Open(p, "/scratch/f", OCreat|ORdwr)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if n, err := task.Write(p, fd, 50e6); err != nil || n != 50e6 {
			t.Errorf("write: n=%d err=%v", n, err)
		}
		if off, _ := task.Offset(fd); off != 50e6 {
			t.Errorf("offset after write = %d, want 50e6", off)
		}
		if _, err := task.Seek(fd, 0, SeekSet); err != nil {
			t.Errorf("seek: %v", err)
		}
		if n, err := task.Read(p, fd, 20e6); err != nil || n != 20e6 {
			t.Errorf("read: n=%d err=%v", n, err)
		}
		// Read past EOF is short.
		if n, err := task.Read(p, fd, 40e6); err != nil || n != 30e6 {
			t.Errorf("short read: n=%d err=%v, want 30e6", n, err)
		}
		if n, err := task.Read(p, fd, 1e6); err != nil || n != 0 {
			t.Errorf("read at EOF: n=%d err=%v, want 0", n, err)
		}
		if err := task.Close(p, fd); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	eng.Run()
}

func TestOpenMissingFileFails(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		if _, err := task.Open(p, "/scratch/nope", ORdonly); !errors.Is(err, ErrNotExist) {
			t.Errorf("open missing: err=%v, want ErrNotExist", err)
		}
	})
	eng.Run()
}

func TestAccessModeEnforcement(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		ro, _ := task.Open(p, "/scratch/a", OCreat|ORdonly)
		if _, err := task.Write(p, ro, 1e6); !errors.Is(err, ErrReadOnly) {
			t.Errorf("write on O_RDONLY: err=%v, want ErrReadOnly", err)
		}
		wo, _ := task.Open(p, "/scratch/a", OWronly)
		if _, err := task.Read(p, wo, 1e6); !errors.Is(err, ErrWriteOnly) {
			t.Errorf("read on O_WRONLY: err=%v, want ErrWriteOnly", err)
		}
	})
	eng.Run()
}

func TestBadFDErrors(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		if _, err := task.Read(p, 99, 10); !errors.Is(err, ErrBadFD) {
			t.Errorf("read bad fd: %v", err)
		}
		if _, err := task.Write(p, 99, 10); !errors.Is(err, ErrBadFD) {
			t.Errorf("write bad fd: %v", err)
		}
		if err := task.Close(p, 99); !errors.Is(err, ErrBadFD) {
			t.Errorf("close bad fd: %v", err)
		}
		if _, err := task.Seek(99, 0, SeekSet); !errors.Is(err, ErrBadFD) {
			t.Errorf("seek bad fd: %v", err)
		}
		if err := task.Fsync(p, 99); !errors.Is(err, ErrBadFD) {
			t.Errorf("fsync bad fd: %v", err)
		}
	})
	eng.Run()
}

func TestSeekWhence(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := task.Open(p, "/scratch/s", OCreat|ORdwr)
		task.Write(p, fd, 10e6)
		if off, _ := task.Seek(fd, 2e6, SeekSet); off != 2e6 {
			t.Errorf("SeekSet -> %d", off)
		}
		if off, _ := task.Seek(fd, 3e6, SeekCur); off != 5e6 {
			t.Errorf("SeekCur -> %d", off)
		}
		if off, _ := task.Seek(fd, -1e6, SeekEnd); off != 9e6 {
			t.Errorf("SeekEnd -> %d", off)
		}
		if _, err := task.Seek(fd, 0, 42); err == nil {
			t.Error("bad whence accepted")
		}
	})
	eng.Run()
}

func TestSharedFileVisibleAcrossTasks(t *testing.T) {
	eng, cl, sys := testSystem()
	w := sys.NewTask(0, cl.Nodes[0])
	r := sys.NewTask(4, cl.Nodes[1])
	eng.Spawn("writer", func(p *sim.Proc) {
		fd, _ := w.Open(p, "/scratch/shared", OCreat|OWronly)
		w.Write(p, fd, 30e6)
		w.Close(p, fd)
	})
	eng.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(30) // after the write completes
		fd, err := r.Open(p, "/scratch/shared", ORdonly)
		if err != nil {
			t.Errorf("reader open: %v", err)
			return
		}
		if n, _ := r.Read(p, fd, 30e6); n != 30e6 {
			t.Errorf("reader got %d bytes, want 30e6", n)
		}
	})
	eng.Run()
}

func TestSmallWriteUsesMetadataPath(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := task.Open(p, "/scratch/meta", OCreat|OWronly)
		start := p.Now()
		task.Write(p, fd, 2048) // < SmallIOBytes
		dur := p.Now() - start
		// Metadata path: latency-bound, far from any streaming rate.
		if dur <= 0 {
			t.Error("small write took no time")
		}
		if cl.Nodes[0].DirtyMB != 0 {
			t.Error("small write must not dirty the cache")
		}
	})
	eng.Run()
}

func TestPathLookup(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := task.Open(p, "/scratch/look", OCreat|OWronly)
		if got, ok := task.Path(fd); !ok || got != "/scratch/look" {
			t.Errorf("Path(%d) = %q,%v", fd, got, ok)
		}
		if _, ok := task.Path(99); ok {
			t.Error("Path of bad fd should fail")
		}
	})
	eng.Run()
}

func TestPwritePreadExplicitOffsets(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := task.Open(p, "/scratch/p", OCreat|ORdwr)
		if n, err := task.Pwrite(p, fd, 100e6, 20e6); err != nil || n != 20e6 {
			t.Errorf("pwrite: n=%d err=%v", n, err)
		}
		// Pwrite must not move the fd offset.
		if off, _ := task.Offset(fd); off != 0 {
			t.Errorf("offset %d after pwrite, want 0", off)
		}
		// File extended to the write's end.
		if n, err := task.Pread(p, fd, 110e6, 20e6); err != nil || n != 10e6 {
			t.Errorf("pread at tail: n=%d err=%v, want short 10e6", n, err)
		}
		if off, _ := task.Offset(fd); off != 0 {
			t.Errorf("offset %d after pread, want 0", off)
		}
	})
	eng.Run()
}

func TestOpenTruncResetsSize(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := task.Open(p, "/scratch/tr", OCreat|OWronly)
		task.Write(p, fd, 30e6)
		task.Close(p, fd)
		fd2, _ := task.Open(p, "/scratch/tr", OWronly|OTrunc)
		if off, _ := task.Seek(fd2, 0, SeekEnd); off != 0 {
			t.Errorf("size after O_TRUNC = %d, want 0", off)
		}
	})
	eng.Run()
}

func TestSeekClampsNegative(t *testing.T) {
	eng, cl, sys := testSystem()
	task := sys.NewTask(0, cl.Nodes[0])
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := task.Open(p, "/scratch/neg", OCreat|ORdwr)
		if off, _ := task.Seek(fd, -5, SeekSet); off != 0 {
			t.Errorf("negative seek gave %d, want clamp to 0", off)
		}
	})
	eng.Run()
}
