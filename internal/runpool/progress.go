package runpool

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress receives completion updates from MapProgress: done jobs out
// of total, called after every job finishes (from whichever goroutine
// finished it — implementations must be safe for concurrent use). A
// nil Progress disables reporting.
//
// Progress is wall-clock-side observability: it may read real time,
// write to stderr, and generally do whatever a human watching a sweep
// wants — because it never touches the simulated runs or their
// serialized artifacts, which stay byte-identical at any worker count.
type Progress func(done, total int)

// MapProgress is Map plus completion reporting. Results are still
// indexed by job; the progress callback only observes the *count* of
// finished jobs, never their order, so it cannot leak completion
// nondeterminism into anything the caller serializes.
func MapProgress[J, R any](workers int, jobs []J, progress Progress, fn func(i int, job J) R) []R {
	if progress == nil {
		return Map(workers, jobs, fn)
	}
	var done int64
	var mu sync.Mutex
	total := len(jobs)
	return Map(workers, jobs, func(i int, j J) R {
		r := fn(i, j)
		mu.Lock()
		done++
		d := int(done)
		mu.Unlock()
		progress(d, total)
		return r
	})
}

// StderrProgress returns a Progress that renders a single-line
// carriage-return progress meter with throughput and an ETA estimate:
//
//	label: 37/96 runs (38%) 2.1 runs/s eta 28s
//
// Updates are throttled to roughly one per 100 ms except for the final
// job, which always renders (with a trailing newline). Safe for
// concurrent use.
func StderrProgress(w io.Writer, label string) Progress {
	var mu sync.Mutex
	start := time.Now()
	var last time.Time
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		final := done >= total
		if !final && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		elapsed := now.Sub(start).Seconds()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(done) / elapsed
		}
		line := fmt.Sprintf("\r%s: %d/%d runs (%d%%)", label, done, total, 100*done/max(total, 1))
		if rate > 0 {
			line += fmt.Sprintf(" %.1f runs/s", rate)
			if !final {
				line += fmt.Sprintf(" eta %.0fs", float64(total-done)/rate)
			}
		}
		if final {
			line += "\n"
		}
		fmt.Fprint(w, line)
	}
}
