// Package runpool fans independent seeded simulations across OS
// threads and reduces the results in submission order.
//
// The paper's methodology is ensemble-over-runs: every figure and
// sweep averages many *independent* seeded simulations. Each single
// simulation must stay on one goroutine-rendezvous schedule so that a
// given seed is bit-reproducible (the internal/sim contract, enforced
// by ensemblelint's simpurity analyzer) — but nothing couples two
// runs with different seeds, so the ensemble itself is embarrassingly
// parallel. runpool is the one place in the repo where that
// parallelism is allowed to live: strictly *above* the sim layer,
// never inside it.
//
// Determinism guarantee: Map returns results indexed by job — result
// i is fn's return value for job i, regardless of which worker ran it
// or in what order workers finished. Callers that fold the returned
// slice left-to-right therefore observe exactly the sequence a
// sequential loop would have produced, so serialized artifacts are
// byte-identical at any worker count (pinned by determinism_test.go).
package runpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a -j style worker-count setting: n >= 1 is taken
// literally, anything else (0, negative) means "all cores"
// (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i, jobs[i]) for every job on up to workers goroutines
// and returns the results indexed by job — never by completion order.
// workers <= 0 means all cores; a single worker degenerates to a
// plain sequential loop on the calling goroutine (no goroutines, no
// channels), so `-j 1` is exactly the pre-parallel code path.
//
// fn must treat its inputs as read-only shared state: it runs
// concurrently with other invocations of itself. A panic in any fn is
// re-raised on the calling goroutine after the remaining in-flight
// jobs drain.
func Map[J, R any](workers int, jobs []J, fn func(i int, job J) R) []R {
	results := make([]R, len(jobs))
	w := Workers(workers)
	if w > len(jobs) {
		w = len(jobs)
	}
	if w <= 1 {
		for i, j := range jobs {
			results[i] = fn(i, j)
		}
		return results
	}

	// Workers claim job indices from an atomic cursor. Claim order is
	// scheduler-dependent; it does not matter, because each worker
	// writes only results[i] and the caller reads the slice after the
	// barrier below.
	var (
		cursor int64 = -1
		wg     sync.WaitGroup
		mu     sync.Mutex
		caught any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if caught == nil {
						caught = r
					}
					mu.Unlock()
					// Stop handing out new jobs; in-flight ones finish.
					atomic.StoreInt64(&cursor, int64(len(jobs)))
				}
			}()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= len(jobs) {
					return
				}
				results[i] = fn(i, jobs[i])
			}
		}()
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	return results
}

// Each is Map for side-effect-free-of-result workloads: it runs
// fn(i, jobs[i]) across the pool and returns when all jobs are done.
func Each[J any](workers int, jobs []J, fn func(i int, job J)) {
	Map(workers, jobs, func(i int, j J) struct{} {
		fn(i, j)
		return struct{}{}
	})
}
