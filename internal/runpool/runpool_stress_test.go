package runpool

// Stress tests for the pool's concurrency contract, meant to run
// under the race detector (the CI step `go test -race
// ./internal/runpool ./internal/sim`): exactly-once execution under
// contention, panics raised mid-pool, and more workers than items.

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapExactlyOnceUnderContention hammers a large job list with
// many workers and verifies every index ran exactly once and landed
// in its own slot.
func TestMapExactlyOnceUnderContention(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const jobs = 10000
	counts := make([]int64, jobs)
	in := make([]int, jobs)
	for i := range in {
		in[i] = i
	}
	for round := 0; round < 5; round++ {
		got := Map(16, in, func(i, j int) int {
			atomic.AddInt64(&counts[i], 1)
			return j * 2
		})
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("round %d: result[%d] = %d, want %d (completion-order leak?)", round, i, v, i*2)
			}
		}
	}
	for i, c := range counts {
		if c != 5 {
			t.Errorf("job %d ran %d times across 5 rounds, want 5", i, c)
		}
	}
}

// TestMapPanicMidPool: a panic in one job must drain the in-flight
// jobs, stop handing out new ones, and re-raise on the caller — not
// deadlock, not leak goroutines, not get swallowed.
func TestMapPanicMidPool(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const jobs = 1000
	var ran int64
	in := make([]int, jobs)
	for i := range in {
		in[i] = i
	}
	var caught any
	func() {
		defer func() { caught = recover() }()
		Map(8, in, func(i, j int) int {
			atomic.AddInt64(&ran, 1)
			if i == jobs/2 {
				panic(fmt.Sprintf("job %d exploded", i))
			}
			return j
		})
	}()
	if caught == nil {
		t.Fatal("panic in a pool job was swallowed")
	}
	if msg, ok := caught.(string); !ok || !strings.Contains(msg, "exploded") {
		t.Errorf("re-raised panic = %v, want the job's own message", caught)
	}
	if n := atomic.LoadInt64(&ran); n == 0 || n > jobs {
		t.Errorf("%d jobs ran, want between 1 and %d", n, jobs)
	}
}

// TestMapPanicEveryJob: simultaneous panics from every worker must
// still produce exactly one re-raise.
func TestMapPanicEveryJob(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	in := make([]int, 64)
	var caught any
	func() {
		defer func() { caught = recover() }()
		Map(16, in, func(i, _ int) int { panic(i) })
	}()
	if caught == nil {
		t.Fatal("panicking pool returned normally")
	}
}

// TestMapMoreWorkersThanItems: the pool must clamp to the job count —
// no worker may spin on an empty cursor or double-claim the tail.
func TestMapMoreWorkersThanItems(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, jobs := range []int{0, 1, 2, 3} {
		in := make([]int, jobs)
		for i := range in {
			in[i] = i + 100
		}
		counts := make([]int64, jobs)
		got := Map(64, in, func(i, j int) int {
			atomic.AddInt64(&counts[i], 1)
			return j
		})
		if len(got) != jobs {
			t.Fatalf("jobs=%d: got %d results", jobs, len(got))
		}
		for i, v := range got {
			if v != i+100 {
				t.Errorf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i+100)
			}
			if counts[i] != 1 {
				t.Errorf("jobs=%d: job %d ran %d times", jobs, i, counts[i])
			}
		}
	}
}

// TestEachMoreWorkersThanItems covers the Each wrapper on the same
// degenerate shapes.
func TestEachMoreWorkersThanItems(t *testing.T) {
	var ran int64
	Each(32, []int{1, 2}, func(i, j int) { atomic.AddInt64(&ran, 1) })
	if ran != 2 {
		t.Errorf("Each ran %d jobs, want 2", ran)
	}
}
