package runpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByJob(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i * 3
	}
	for _, w := range []int{1, 2, 4, 16, 0, -1} {
		got := Map(w, jobs, func(i, job int) int { return job + 1 })
		for i, r := range got {
			if r != jobs[i]+1 {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, r, jobs[i]+1)
			}
		}
	}
}

func TestMapPassesJobIndex(t *testing.T) {
	jobs := []string{"a", "b", "c", "d", "e"}
	got := Map(3, jobs, func(i int, job string) int { return i })
	for i, r := range got {
		if r != i {
			t.Fatalf("result[%d] = %d, want %d", i, r, i)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(4, nil, func(i, j int) int { return j }); len(got) != 0 {
		t.Fatalf("empty jobs: got %d results", len(got))
	}
	got := Map(4, []int{7}, func(i, j int) int { return j * j })
	if len(got) != 1 || got[0] != 49 {
		t.Fatalf("single job: got %v", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	const n = 1000
	var ran [n]int32
	Each(8, make([]struct{}, n), func(i int, _ struct{}) {
		atomic.AddInt32(&ran[i], 1)
	})
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core environment; concurrency rendezvous would deadlock-or-timeout flakily")
	}
	// Two jobs that can only finish if they overlap in time.
	gate := make(chan struct{}, 2)
	Each(2, []int{0, 1}, func(i, _ int) {
		gate <- struct{}{}
		for len(gate) < 2 {
			runtime.Gosched()
		}
	})
}

func TestMapSequentialWhenOneWorker(t *testing.T) {
	// With one worker the jobs must run on the calling goroutine in
	// submission order (this is the -j 1 reference path).
	var order []int
	Map(1, []int{10, 11, 12}, func(i, j int) int {
		order = append(order, i) // safe: sequential by contract
		return j
	})
	for i, o := range order {
		if o != i {
			t.Fatalf("sequential path ran out of order: %v", order)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(1) != 1 {
		t.Errorf("Workers(1) = %d", Workers(1))
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn did not propagate to the caller")
		}
	}()
	Map(4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i, j int) int {
		if j == 3 {
			panic("boom")
		}
		return j
	})
}
