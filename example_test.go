package ensembleio_test

// Executable documentation: each example is a deterministic, runnable
// snippet of the public API (the simulation is a pure function of its
// seed, so counts and orderings are stable).

import (
	"fmt"

	"ensembleio"
)

// The minimal events-to-ensembles workflow: run a workload, pull one
// op's duration ensemble, summarize.
func ExampleRunIOR() {
	run := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(),
		Tasks:   64,
		Reps:    2,
		Seed:    1,
	})
	writes := ensembleio.Durations(run, ensembleio.OpWrite)
	fmt.Println("write events:", writes.Len())
	fmt.Println("positive durations:", writes.Min() > 0)
	// Output:
	// write events: 128
	// positive durations: true
}

// Splitting a transfer into k calls narrows per-task totals, so the
// predicted slowest of N tasks falls monotonically with k (Eq. 1 plus
// the Law of Large Numbers).
func ExampleSplitPrediction() {
	run := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 256, Reps: 2, Seed: 1,
	})
	single := ensembleio.Durations(run, ensembleio.OpWrite)
	p1 := ensembleio.SplitPrediction(single, 1, 256)
	p4 := ensembleio.SplitPrediction(single, 4, 256)
	p8 := ensembleio.SplitPrediction(single, 8, 256)
	fmt.Println("k=4 faster than k=1:", p4 < p1)
	fmt.Println("k=8 faster than k=4:", p8 < p4)
	// Output:
	// k=4 faster than k=1: true
	// k=8 faster than k=4: true
}

// The advisor reads bottleneck signatures straight from a trace.
func ExampleDiagnose() {
	run := ensembleio.RunMADbench(ensembleio.MADbenchConfig{
		Machine: ensembleio.Franklin(), Tasks: 64, Matrices: 6, Seed: 3,
	})
	for _, f := range ensembleio.Diagnose(run) {
		fmt.Println(f.Code)
	}
	// Output:
	// read-tail
	// strided-reads
	// misaligned-writes
}

// Two runs of the same experiment: traces differ, ensembles do not.
func ExampleReproducibility() {
	a := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 512, Reps: 3, Seed: 1})
	b := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 512, Reps: 3, Seed: 2})
	_, same := ensembleio.Reproducibility(
		ensembleio.Durations(a, ensembleio.OpWrite),
		ensembleio.Durations(b, ensembleio.OpWrite))
	fmt.Println("statistically the same experiment:", same)
	// Output:
	// statistically the same experiment: true
}

// The online pattern detector classifies access streams — here, the
// constant-stride reads of the MADbench middle phase.
func ExampleDetectPatterns() {
	run := ensembleio.RunMADbench(ensembleio.MADbenchConfig{
		Machine: ensembleio.Jaguar(), Tasks: 32, Matrices: 5, Seed: 1,
	})
	summary := ensembleio.DetectPatterns(run).Summarize(ensembleio.OpRead)
	fmt.Println("strided streams:", summary.Strided == summary.Streams)
	fmt.Println("stride bytes:", summary.DominantStride)
	// Output:
	// strided streams: true
	// stride bytes: 301000000
}

// Serializer spots a single rank gating the whole job (the GCRM
// metadata bottleneck).
func ExampleSerializer() {
	run := ensembleio.RunGCRM(ensembleio.GCRMConfig{
		Machine: ensembleio.Franklin(), Tasks: 512, Seed: 1,
	})
	rank, _, found := ensembleio.Serializer(run)
	fmt.Println("serializer found:", found, "rank:", rank)
	// Output:
	// serializer found: true rank: 0
}
