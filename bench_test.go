package ensembleio

// Benchmark harness: one benchmark per reproduced figure (the
// regeneration path for every evaluation artifact in the paper), plus
// ablation benches for the design choices called out in DESIGN.md §5
// and micro-benchmarks of the statistical core.
//
// Figure benches report the simulated wall time (sim_s) and the
// aggregate data rate (sim_MB/s) of the reproduced experiment so the
// paper-vs-measured comparison can be read straight off `go test
// -bench`.

import (
	"bytes"
	"fmt"
	"testing"
)

func reportRun(b *testing.B, run *Run) {
	b.ReportMetric(float64(run.Wall), "sim_s")
	b.ReportMetric(run.AggregateMBps(), "sim_MB/s")
}

// --- Figure 1: IOR 512 MB transfers, 1024 tasks ---

func BenchmarkFig1_IOR512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := RunIOR(IORConfig{Machine: Franklin(), Tasks: 1024, Reps: 5, Seed: int64(i + 1)})
		reportRun(b, run)
	}
}

// --- Figure 2: transfer splitting (Law of Large Numbers) ---

// BenchmarkFig2_LLN regenerates the whole Figure 2 ensemble per
// iteration — the transfer sweep over k=1,2,4,8 averaged over three
// seeds, exactly the experiment cmd/paperfig renders — through the
// runpool-parallel sweep driver. This is the headline perf number for
// "regenerate the paper's artifacts": twelve independent simulations
// fanned across all cores with an ordered (byte-stable) reduction.
func BenchmarkFig2_LLN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := IORTransferSweep(IORConfig{Machine: Franklin(), Tasks: 1024, Reps: 5},
			[]int{1, 2, 4, 8}, []int64{1, 2, 3})
		b.ReportMetric(pts[0].MeanRateMBps, "k1_MB/s")
		b.ReportMetric(pts[len(pts)-1].MeanRateMBps, "k8_MB/s")
	}
}

// BenchmarkFig2_LLN_Sequential is the same experiment pinned to one
// worker — the before/after for the parallel executor (and the
// reference that -j only changes speed, never results).
func BenchmarkFig2_LLN_Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := IORTransferSweepJ(IORConfig{Machine: Franklin(), Tasks: 1024, Reps: 5},
			[]int{1, 2, 4, 8}, []int64{1, 2, 3}, 1)
		b.ReportMetric(pts[0].MeanRateMBps, "k1_MB/s")
	}
}

// --- Figure 4: MADbench on the two platforms ---

func BenchmarkFig4_MADbenchFranklin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRun(b, RunMADbench(MADbenchConfig{Machine: Franklin(), Seed: int64(i + 1)}))
	}
}

func BenchmarkFig4_MADbenchJaguar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRun(b, RunMADbench(MADbenchConfig{Machine: Jaguar(), Seed: int64(i + 1)}))
	}
}

// --- Figure 5: Franklin after the Lustre patch ---

func BenchmarkFig5_MADbenchFranklinPatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRun(b, RunMADbench(MADbenchConfig{Machine: FranklinPatched(), Seed: int64(i + 1)}))
	}
}

// --- Figure 6: GCRM baseline and the three optimizations ---

func benchGCRM(b *testing.B, stage int) {
	for i := 0; i < b.N; i++ {
		cfg := GCRMConfig{Machine: Franklin(), Seed: int64(i + 1)}
		if stage >= 1 {
			cfg.Aggregators = 80
		}
		if stage >= 2 {
			cfg.Align = true
		}
		if stage >= 3 {
			cfg.AggregateMetadata = true
		}
		reportRun(b, RunGCRM(cfg))
	}
}

func BenchmarkFig6_GCRMBaseline(b *testing.B)   { benchGCRM(b, 0) }
func BenchmarkFig6_GCRMCollective(b *testing.B) { benchGCRM(b, 1) }
func BenchmarkFig6_GCRMAligned(b *testing.B)    { benchGCRM(b, 2) }
func BenchmarkFig6_GCRMMetaAgg(b *testing.B)    { benchGCRM(b, 3) }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_SlotScheduling contrasts the stream-slot flusher
// against pure fair sharing: with slots forced to "all", the harmonic
// mode structure of Figure 1c collapses to a single mode.
func BenchmarkAblation_SlotScheduling(b *testing.B) {
	for _, mode := range []struct {
		name    string
		weights [3]float64
	}{
		{"mixed-slots", Franklin().SlotWeights},
		{"fair-only", [3]float64{0, 0, 1}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := Franklin()
				m.SlotWeights = mode.weights
				run := RunIOR(IORConfig{Machine: m, Tasks: 1024, Reps: 5, Seed: int64(i + 1)})
				writes := Durations(run, OpWrite)
				h := NewHistogram(LinearBins(0, writes.Max()*1.01, 100))
				h.AddAll(writes)
				modes := h.Modes(ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04})
				b.ReportMetric(float64(len(modes)), "modes")
				reportRun(b, run)
			}
		})
	}
}

// BenchmarkAblation_StridedPatch contrasts the strided read-ahead
// defect against the patched client (the Figure 5 before/after).
func BenchmarkAblation_StridedPatch(b *testing.B) {
	for _, mode := range []struct {
		name  string
		patch bool
	}{{"bug", false}, {"patched", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := Franklin()
				m.PatchStridedReadahead = mode.patch
				reportRun(b, RunMADbench(MADbenchConfig{Machine: m, Seed: int64(i + 1)}))
			}
		})
	}
}

// BenchmarkAblation_ConflictModel removes the extent-lock conflict
// stalls from the GCRM baseline, isolating their contribution to the
// baseline's straggler-driven slowness.
func BenchmarkAblation_ConflictModel(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"conflicts-on", true}, {"conflicts-off", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := Franklin()
				if !mode.on {
					m.ConflictProbPerWriterPerOST = 0
					m.ConflictProbMax = 0
				}
				reportRun(b, RunGCRM(GCRMConfig{Machine: m, Seed: int64(i + 1)}))
			}
		})
	}
}

// BenchmarkAblation_OSTLuck removes the non-work-conserving slow-OST
// tail, which eliminates most of the Figure 2 splitting benefit.
func BenchmarkAblation_OSTLuck(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"luck-on", true}, {"luck-off", false}} {
		mode := mode
		for _, k := range []int{1, 8} {
			k := k
			b.Run(fmt.Sprintf("%s/k=%d", mode.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := Franklin()
					if !mode.on {
						m.SlowLuckProb = 0
					}
					run := RunIOR(IORConfig{
						Machine: m, Tasks: 1024, Reps: 5,
						TransferBytes: 512e6 / int64(k), Seed: int64(i + 1),
					})
					reportRun(b, run)
				}
			})
		}
	}
}

// --- Telemetry overhead ---

// benchTelemetry is the telemetry cost probe: the same mid-size IOR
// run with the sink on or off. The disabled variant is the number the
// bench guard watches — a nil sink must cost only dead nil-checks, so
// Disabled should be statistically indistinguishable from the
// pre-telemetry baseline, and Enabled bounds the price of -trace.
func benchTelemetry(b *testing.B, enabled bool) {
	for i := 0; i < b.N; i++ {
		run := RunIOR(IORConfig{
			Machine: Franklin(), Tasks: 256, Reps: 3,
			Seed: int64(i + 1), Telemetry: enabled,
		})
		if enabled && run.Telemetry == nil {
			b.Fatal("telemetry requested but absent")
		}
		reportRun(b, run)
	}
}

func BenchmarkTelemetryDisabled(b *testing.B) { benchTelemetry(b, false) }
func BenchmarkTelemetryEnabled(b *testing.B)  { benchTelemetry(b, true) }

// --- Statistical core micro-benchmarks ---

func syntheticDataset(n int) *Dataset {
	xs := make([]float64, n)
	v := 1.0
	for i := range xs {
		v = v*1103515245 + 12345
		if v > 1e18 {
			v /= 1e12
		}
		xs[i] = 5 + 30*float64(i%97)/97 + v/1e18
	}
	return NewDataset(xs)
}

func BenchmarkEnsemble_HistogramAdd(b *testing.B) {
	h := NewHistogram(LinearBins(0, 50, 200))
	d := syntheticDataset(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AddAll(d)
	}
}

func BenchmarkEnsemble_Modes(b *testing.B) {
	h := NewHistogram(LinearBins(0, 50, 200))
	h.AddAll(syntheticDataset(100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Modes(ModeOpts{})
	}
}

func BenchmarkEnsemble_KS(b *testing.B) {
	x := syntheticDataset(100000)
	y := syntheticDataset(100001)
	x.Sorted()
	y.Sorted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KS(x, y)
	}
}

func BenchmarkEnsemble_ConvolveK8(b *testing.B) {
	h := NewHistogram(LinearBins(0, 50, 256))
	h.AddAll(syntheticDataset(10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveK(h, 8)
	}
}

func BenchmarkEnsemble_ExpectedMax(b *testing.B) {
	h := NewHistogram(LinearBins(0, 50, 256))
	h.AddAll(syntheticDataset(10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpectedMax(h, 1024)
	}
}

// --- Trace codec throughput ---

func BenchmarkTraceCodec_Binary(b *testing.B) {
	run := cachedBenchRun()
	var buf bytes.Buffer
	if err := SaveTrace(&buf, run); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := SaveTrace(&buf, run); err != nil {
			b.Fatal(err)
		}
		if _, _, err := LoadTrace(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

var benchRun *Run

func cachedBenchRun() *Run {
	if benchRun == nil {
		benchRun = RunIOR(IORConfig{Machine: Franklin(), Tasks: 256, Reps: 3, Seed: 42})
	}
	return benchRun
}

// BenchmarkSimulatorThroughput measures raw simulator speed on the
// largest workload (GCRM baseline, 10,240 tasks): a fixed four-seed
// ensemble fanned across all cores per iteration. sim_s is the
// aggregate simulated time delivered per iteration; on an N-core
// runner the runpool fan-out plus the typed event heap should deliver
// it severalfold faster than the old one-run-at-a-time loop.
func BenchmarkSimulatorThroughput(b *testing.B) {
	seeds := []int64{1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		runs := RunMany(0, seeds, func(s int64) *Run {
			return RunGCRM(GCRMConfig{Machine: Franklin(), Seed: s})
		})
		simSec := 0.0
		for _, r := range runs {
			simSec += float64(r.Wall)
		}
		b.ReportMetric(simSec, "sim_s")
	}
}

// BenchmarkSimulatorThroughputSingle is one GCRM run per iteration —
// the single-thread engine hot path in isolation (event heap, RNG,
// flusher), with no fan-out masking regressions.
func BenchmarkSimulatorThroughputSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := RunGCRM(GCRMConfig{Machine: Franklin(), Seed: int64(i + 1)})
		b.ReportMetric(float64(run.Wall), "sim_s")
	}
}

// BenchmarkFastForward is the end-to-end ablation of the analytic
// fast path: the flagship GCRM run with the completion calendar and
// epoch memoization on versus the pure event-path fallback
// (-analytic=off). Both sides produce byte-identical artifacts — the
// determinism suite pins that — so the ratio here is pure simulator
// speed, the number the fastpath-ablation make target quotes.
func BenchmarkFastForward(b *testing.B) {
	for _, side := range []struct {
		name string
		off  bool
	}{{"analytic", false}, {"event", true}} {
		b.Run(side.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := Franklin()
				m.AnalyticOff = side.off
				run := RunGCRM(GCRMConfig{Machine: m, Seed: int64(i + 1)})
				b.ReportMetric(float64(run.Wall), "sim_s")
			}
		})
	}
}

// --- Content-addressed cache (cascache) hot paths ---

// cacheBenchGrid is the headline campaign shape from the cache design:
// n scenarios with ~50% duplicates (each unique scenario appears
// twice), spread over 25 generated workloads.
func cacheBenchGrid(n int) []CampaignEntry {
	entries := make([]CampaignEntry, 0, n)
	for i := 0; i < n; i++ {
		u := int64(i / 2)
		entries = append(entries, CampaignEntry{
			Name:     "grid",
			Spec:     GenerateWorkload(u % 25),
			Platform: Franklin(),
			Seed:     u / 25,
		})
	}
	return entries
}

// BenchmarkCacheHitMRU is the pure serve path: Gets against an entry
// already resident in the in-process MRU layer, batched 1024 per
// iteration so -benchtime 1x sits above timer granularity. This is
// the per-scenario cost a warm campaign pays, so allocs/op is gated
// exactly (bench-guard treats a zero memory baseline as "any
// allocation is a regression") to keep the hot path heap-free.
func BenchmarkCacheHitMRU(b *testing.B) {
	store, err := OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	spec := GenerateWorkload(1)
	key, err := ScenarioCacheKey(spec, Franklin(), nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Put(key, CacheMeta{Workload: spec.Name, Seed: 1},
		[]CacheArtifact{{Name: "trace.bin", Data: bytes.Repeat([]byte{0xab}, 4096)}}); err != nil {
		b.Fatal(err)
	}
	if _, ok := store.Get(key); !ok {
		b.Fatal("warm-up Get missed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			if _, ok := store.Get(key); !ok {
				b.Fatal("MRU Get missed")
			}
		}
	}
}

// BenchmarkCacheCampaignCold100 runs the acceptance campaign — 100
// scenarios, ~50% duplicates — against an empty store: every unique
// scenario simulates, then publishes. BenchmarkCacheCampaignWarm100
// is the same grid against the populated store: nothing simulates.
// The checked-in ratio between the two (warm >= 2x cold, in practice
// far more) is the cache's reason to exist; bench-guard holds both
// sides to their checked-in numbers.
func BenchmarkCacheCampaignCold100(b *testing.B) {
	entries := cacheBenchGrid(100)
	for i := 0; i < b.N; i++ {
		store, err := OpenCache(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		_, stats, err := RunCampaign(entries, CampaignOptions{Workers: 4, Store: store})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Misses != stats.Unique {
			b.Fatalf("cold stats %+v", stats)
		}
	}
}

func BenchmarkCacheCampaignWarm100(b *testing.B) {
	entries := cacheBenchGrid(100)
	store, err := OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := RunCampaign(entries, CampaignOptions{Workers: 4, Store: store}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := RunCampaign(entries, CampaignOptions{Workers: 4, Store: store})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Misses != 0 || stats.Hits != stats.Unique {
			b.Fatalf("warm stats %+v", stats)
		}
	}
}
