GO ?= go
FUZZTIME ?= 10s
# bench knobs: BENCHTIME=1x gives one iteration per benchmark (the CI
# smoke setting); raise it (e.g. 2s) for a low-noise baseline.
BENCHTIME ?= 1x
BENCHCOUNT ?= 3

.PHONY: build test race race-stress lint fmt vet fuzz-smoke bench bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-stress: uncached focused race run over the concurrency-heavy
# packages — the runpool stress tests (panics mid-pool, workers >
# items) and the simulator's lock-step scheduler.
race-stress:
	$(GO) test -race -count=1 ./internal/runpool ./internal/sim

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint = everything static: formatting, go vet, and the project's own
# determinism/statistics multichecker (see cmd/ensemblelint).
lint: fmt vet
	$(GO) run ./cmd/ensemblelint ./...

# bench: run every benchmark in the repo BENCHCOUNT times and rewrite
# the checked-in perf baseline. BENCH_ensembleio.json maps each
# benchmark to metric-name -> values (benchstat-comparable via the
# embedded raw lines); future PRs regress against it.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./... > bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_ensembleio.json
	@rm -f bench.out
	@echo "wrote BENCH_ensembleio.json"

# bench-smoke: every benchmark compiles and survives one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 ./...

# One target per invocation: go test allows a single -fuzz pattern
# match per run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzTraceDecode$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzTraceDecodeJSONL$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzProfileJSON$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt

ci: build lint race race-stress bench-smoke fuzz-smoke
