GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race lint fmt vet fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint = everything static: formatting, go vet, and the project's own
# determinism/statistics multichecker (see cmd/ensemblelint).
lint: fmt vet
	$(GO) run ./cmd/ensemblelint ./...

# One target per invocation: go test allows a single -fuzz pattern
# match per run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzTraceDecode$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzTraceDecodeJSONL$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzProfileJSON$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt

ci: build lint race fuzz-smoke
