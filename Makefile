GO ?= go
FUZZTIME ?= 10s
# bench knobs: BENCHTIME=1x gives one iteration per benchmark (the CI
# smoke setting); raise it (e.g. 2s) for a low-noise baseline.
BENCHTIME ?= 1x
BENCHCOUNT ?= 3

.PHONY: build test race race-stress lint lint-sarif lint-testdata fmt vet fuzz-smoke bench bench-smoke trace-smoke bench-guard cache-golden fastpath-ablation dsl-golden interference-golden ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-stress: uncached focused race run over the concurrency-heavy
# packages — the runpool stress tests (panics mid-pool, workers >
# items) and the simulator's lock-step scheduler.
race-stress:
	$(GO) test -race -count=1 ./internal/runpool ./internal/sim

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint = everything static: formatting, go vet, and the project's own
# determinism/statistics multichecker (see cmd/ensemblelint) — the
# per-package analyzers plus the interprocedural detflow dataflow and
# the //lint:allow hygiene check, under a hard wall-clock budget so
# the whole-program analysis can never bog down CI.
lint: fmt vet
	$(GO) run ./cmd/ensemblelint -budget 30s ./...

# lint-sarif: same findings as machine-readable SARIF 2.1.0 (validated
# before writing), for GitHub code-scanning annotations.
lint-sarif:
	@mkdir -p out
	$(GO) run ./cmd/ensemblelint -budget 30s -sarif -o out/ensemblelint.sarif ./...
	@echo "wrote out/ensemblelint.sarif"

# lint-testdata: smoke-check that every golden corpus still
# type-checks and matches its want comments (the lint suite's own
# tests; testdata dirs are invisible to ./... so this is the only
# gate that loads them).
lint-testdata:
	$(GO) test -count=1 ./internal/lint/...

# bench: run every benchmark in the repo BENCHCOUNT times and rewrite
# the checked-in perf baseline. BENCH_ensembleio.json maps each
# benchmark to metric-name -> values (benchstat-comparable via the
# embedded raw lines); future PRs regress against it.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) ./... > bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_ensembleio.json
	@rm -f bench.out
	@echo "wrote BENCH_ensembleio.json"

# bench-smoke: every benchmark compiles and survives one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 ./...

# trace-smoke: the end-to-end telemetry workflow — a faulted IOR run
# exports a Chrome trace, a span stream, and a metrics snapshot; the
# trace must pass the schema validator (i.e. load in Perfetto) and
# ensembletop must digest the snapshot into its hot-spot tables.
trace-smoke:
	@mkdir -p out
	$(GO) run ./cmd/iorbench -tasks 64 -faults testdata/scenarios/flaky-ost.json \
		-trace out/smoke.trace.json -traceformat chrome -telemetry out/smoke.telemetry.json
	$(GO) run ./cmd/tracestat -validate-chrome out/smoke.trace.json
	$(GO) run ./cmd/iorbench -tasks 64 -faults testdata/scenarios/flaky-ost.json \
		-trace out/smoke.spans.jsonl -traceformat spans
	$(GO) run ./cmd/ensembletop -top 5 -spans out/smoke.spans.jsonl out/smoke.telemetry.json

# fastpath-ablation: the analytic fast path (completion calendar +
# epoch memoization) and the pure event path (-analytic=off) must
# produce byte-identical artifacts. Regenerates a reduced figure suite
# — the IOR ensemble behind fig 1a and the GCRM optimization ladder
# behind fig 6, the workload whose repeated phases the memo cache
# serves — plus a traced, telemetry-enabled gcrmio run, under both
# settings, and diffs every artifact byte for byte.
fastpath-ablation:
	@rm -rf out/ablation && mkdir -p out/ablation/on out/ablation/off
	$(GO) run ./cmd/paperfig -out out/ablation/on -fig 1a -analytic on
	$(GO) run ./cmd/paperfig -out out/ablation/on -fig 6 -analytic on
	$(GO) run ./cmd/paperfig -out out/ablation/off -fig 1a -analytic off
	$(GO) run ./cmd/paperfig -out out/ablation/off -fig 6 -analytic off
	$(GO) run ./cmd/gcrmio -tasks 2560 -aggregators 80 -analytic on \
		-trace out/ablation/on/gcrm.trace -telemetry out/ablation/on/gcrm.telemetry.json \
		| grep -v 'written to' > out/ablation/on/gcrm.txt
	$(GO) run ./cmd/gcrmio -tasks 2560 -aggregators 80 -analytic off \
		-trace out/ablation/off/gcrm.trace -telemetry out/ablation/off/gcrm.telemetry.json \
		| grep -v 'written to' > out/ablation/off/gcrm.txt
	diff -r out/ablation/on out/ablation/off
	@echo "fastpath-ablation: analytic on/off artifacts byte-identical"

# cache-golden: the content-addressed run cache must be invisible in
# the bytes. A cold wlrun batch (analytic on, -j 4) populates the
# store; a warm pass over the same grid from the other sim path and
# worker count (-analytic off, -j 1, -cache-verify recomputing every
# hit) must emit byte-identical artifacts. Then the checked-in
# campaign grid runs cold and warm through ensemblecampaign — same
# diff — and ensembletop digests the cache counters into the
# effectiveness line.
cache-golden:
	@rm -rf out/cache && mkdir -p out/cache/cold out/cache/warm out/cache/camp-cold out/cache/camp-warm
	$(GO) run ./cmd/wlrun -spec testdata/scenarios/workloads/ior-shared.json -gen 3-4 \
		-faults testdata/scenarios/flaky-ost.json -runs 2 -j 4 \
		-cache out/cache/store -out out/cache/cold > out/cache/cold.txt
	$(GO) run ./cmd/wlrun -spec testdata/scenarios/workloads/ior-shared.json -gen 3-4 \
		-faults testdata/scenarios/flaky-ost.json -runs 2 -j 1 -analytic off \
		-cache out/cache/store -cache-verify -out out/cache/warm > out/cache/warm.txt
	diff -r out/cache/cold out/cache/warm
	grep -q 'cache: 0 hit' out/cache/cold.txt
	grep -q 'cache: 6 hit.*verified' out/cache/warm.txt
	$(GO) run ./cmd/ensemblecampaign -campaign testdata/scenarios/campaigns/whatif-sweep.json \
		-j 4 -cache out/cache/campstore -out out/cache/camp-cold \
		-telemetry out/cache/camp.telemetry.json > /dev/null
	$(GO) run ./cmd/ensemblecampaign -campaign testdata/scenarios/campaigns/whatif-sweep.json \
		-j 1 -cache out/cache/campstore -cache-verify -out out/cache/camp-warm > /dev/null
	diff -r out/cache/camp-cold out/cache/camp-warm
	$(GO) run ./cmd/ensembletop out/cache/camp.telemetry.json > out/cache/top.txt
	grep -q '^cache: served' out/cache/top.txt
	@echo "cache-golden: cache-served artifacts byte-identical across sim paths and worker counts"

# bench-guard: the telemetry-off hot path must stay within noise of
# the checked-in baseline. Three repetitions of the focused benchmarks,
# best-of compared against the baseline's best — generous time slack
# (this catches "the disabled path got hot", not scheduler jitter) and
# a tight memory slack (allocs/op is nearly deterministic, so eroding
# allocation wins trip the guard long before they show up as time).
bench-guard:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry|BenchmarkSimulatorThroughputSingle$$|BenchmarkFastForward$$|BenchmarkCacheHitMRU$$|BenchmarkCacheCampaign' \
		-benchmem -benchtime 1x -count 3 . | \
		$(GO) run ./cmd/benchjson -check BENCH_ensembleio.json -slack 3.0 -memslack 1.25

# dsl-golden: the workload DSL's full proof chain, uncached — the
# spec ports of IOR/MADbench/GCRM serialize byte-identical artifacts
# to the hand-coded runners, the corpus compiles and stays canonical,
# the golden digests of every corpus run still match, and the seeded
# spec generator passes the determinism gates (-j 1 vs -j 4, analytic
# on vs off). Ends with a wlrun smoke: spec in, artifacts out.
dsl-golden:
	$(GO) test -count=1 ./internal/wldsl
	$(GO) test -count=1 -run 'TestWorkloadDSLGolden|TestGeneratedSpecsDeterministic' .
	@rm -rf out/wlrun && mkdir -p out/wlrun
	$(GO) run ./cmd/wlrun -spec testdata/scenarios/workloads/checkpoint-bursty.json \
		-faults testdata/scenarios/flaky-ost.json -runs 2 -j 2 -out out/wlrun
	@ls out/wlrun >/dev/null
	@echo "dsl-golden: spec ports byte-identical, corpus canonical, goldens stable"

# interference-golden: the multi-tenant pipeline's proof chain — the
# tenancy package's victim/aggressor and clean-co-run tests, the
# two-tenant determinism gates (-j 1 vs -j 4, analytic on vs off, with
# an adversarial generated tenant in the mix), and the SHA-256 golden
# digests of every co-run artifact (per-tenant traces, merged
# telemetry, spans, interference report). Ends with an ensembleduel
# smoke: two specs in, report and artifact set out.
interference-golden:
	$(GO) test -count=1 ./internal/tenancy
	$(GO) test -count=1 -run 'TestInterferenceGolden|TestTenancyDeterministic' .
	@rm -rf out/duel && mkdir -p out/duel
	$(GO) run ./cmd/ensembleduel -spec testdata/scenarios/workloads/ior-shared.json \
		-spec testdata/scenarios/workloads/gcrm-collective.json -stagger 0,1 -seed 5 -out out/duel
	@ls out/duel >/dev/null
	@echo "interference-golden: co-runs deterministic, goldens stable"

# One target per invocation: go test allows a single -fuzz pattern
# match per run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzTraceDecode$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzTraceDecodeJSONL$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzProfileJSON$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzSpanDecode$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzMetricsDecode$$' -fuzztime=$(FUZZTIME) ./internal/tracefmt
	$(GO) test -run='^$$' -fuzz='FuzzSpecDecode$$' -fuzztime=$(FUZZTIME) ./internal/wldsl
	$(GO) test -run='^$$' -fuzz='FuzzScenarioKey$$' -fuzztime=$(FUZZTIME) ./internal/cascache

ci: build lint lint-testdata race race-stress bench-smoke trace-smoke fastpath-ablation dsl-golden interference-golden cache-golden bench-guard fuzz-smoke
