package ensembleio_test

// The determinism regression suite. internal/sim promises bit-identical
// simulations for a given seed "regardless of GOMAXPROCS"; the paper's
// reproduction rests on that promise, so it is pinned here at the
// strongest possible level: the *serialized bytes* of every tracefmt
// encoding (binary trace, JSONL trace, profile JSON) must be identical
// across repeated runs and across scheduler configurations. The
// complementary static side of the contract is enforced by
// `ensemblelint` (internal/lint).

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"ensembleio"
)

// runAndSerialize executes one seeded IOR workload (trace mode plus a
// second profile-mode run) and returns every persistent encoding of
// the results.
func runAndSerialize(t *testing.T, seed int64) map[string][]byte {
	t.Helper()
	cfg := ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 16, Reps: 2,
		BlockBytes: 32e6, TransferBytes: 8e6, Seed: seed,
	}
	run := ensembleio.RunIOR(cfg)

	out := make(map[string][]byte)
	var bin, jsonl bytes.Buffer
	if err := ensembleio.SaveTrace(&bin, run); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	if err := ensembleio.SaveTraceJSON(&jsonl, run); err != nil {
		t.Fatalf("SaveTraceJSON: %v", err)
	}
	out["trace.bin"] = bin.Bytes()
	out["trace.jsonl"] = jsonl.Bytes()
	out["wall"] = []byte(fmt.Sprintf("%v", run.Wall))

	pcfg := cfg
	pcfg.Mode = ensembleio.ProfileMode
	prun := ensembleio.RunIOR(pcfg)
	profile, err := ensembleio.ProfileOf(prun)
	if err != nil {
		t.Fatalf("ProfileOf: %v", err)
	}
	var pjson bytes.Buffer
	if err := ensembleio.SaveProfile(&pjson, profile); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	out["profile.json"] = pjson.Bytes()
	return out
}

func assertIdentical(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	for name, want := range a {
		got := b[name]
		if !bytes.Equal(want, got) {
			i := 0
			for i < len(want) && i < len(got) && want[i] == got[i] {
				i++
			}
			t.Errorf("%s: %s differs (len %d vs %d, first divergence at byte %d)",
				label, name, len(want), len(got), i)
		}
	}
}

// TestSeededRunsAreByteIdentical runs the same seeded workload twice
// and demands byte-identical serialized artifacts.
func TestSeededRunsAreByteIdentical(t *testing.T) {
	a := runAndSerialize(t, 7)
	b := runAndSerialize(t, 7)
	assertIdentical(t, "same seed, repeated run", a, b)
	if len(a["trace.bin"]) == 0 || len(a["trace.jsonl"]) == 0 {
		t.Fatal("serialized traces are empty; the determinism check is vacuous")
	}
}

// TestDifferentSeedsDiffer guards the guard: if two different seeds
// produced identical traces, the identity assertions above would be
// passing trivially.
func TestDifferentSeedsDiffer(t *testing.T) {
	a := runAndSerialize(t, 7)
	b := runAndSerialize(t, 8)
	if bytes.Equal(a["trace.bin"], b["trace.bin"]) {
		t.Error("different seeds produced identical binary traces")
	}
}

// TestDeterminismAcrossGOMAXPROCS runs the workload under
// GOMAXPROCS=1 and under GOMAXPROCS=4 (forced, so the check bites
// even on single-core CI runners): the engine's lock-step process
// scheduling must make the serialized results byte-identical either
// way.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	single := runAndSerialize(t, 7)
	runtime.GOMAXPROCS(4)
	parallel := runAndSerialize(t, 7)
	assertIdentical(t, "GOMAXPROCS=1 vs GOMAXPROCS=4", single, parallel)
}
