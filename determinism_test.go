package ensembleio_test

// The determinism regression suite. internal/sim promises bit-identical
// simulations for a given seed "regardless of GOMAXPROCS"; the paper's
// reproduction rests on that promise, so it is pinned here at the
// strongest possible level: the *serialized bytes* of every tracefmt
// encoding (binary trace, JSONL trace, profile JSON) must be identical
// across repeated runs and across scheduler configurations. The
// complementary static side of the contract is enforced by
// `ensemblelint` (internal/lint).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"ensembleio"
)

// runAndSerialize executes one seeded IOR workload (trace mode plus a
// second profile-mode run) and returns every persistent encoding of
// the results.
func runAndSerialize(t *testing.T, seed int64) map[string][]byte {
	t.Helper()
	cfg := ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 16, Reps: 2,
		BlockBytes: 32e6, TransferBytes: 8e6, Seed: seed,
	}
	run := ensembleio.RunIOR(cfg)

	out := make(map[string][]byte)
	var bin, jsonl bytes.Buffer
	if err := ensembleio.SaveTrace(&bin, run); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	if err := ensembleio.SaveTraceJSON(&jsonl, run); err != nil {
		t.Fatalf("SaveTraceJSON: %v", err)
	}
	out["trace.bin"] = bin.Bytes()
	out["trace.jsonl"] = jsonl.Bytes()
	out["wall"] = []byte(fmt.Sprintf("%v", run.Wall))

	pcfg := cfg
	pcfg.Mode = ensembleio.ProfileMode
	prun := ensembleio.RunIOR(pcfg)
	profile, err := ensembleio.ProfileOf(prun)
	if err != nil {
		t.Fatalf("ProfileOf: %v", err)
	}
	var pjson bytes.Buffer
	if err := ensembleio.SaveProfile(&pjson, profile); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	out["profile.json"] = pjson.Bytes()
	return out
}

func assertIdentical(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	for name, want := range a {
		got := b[name]
		if !bytes.Equal(want, got) {
			i := 0
			for i < len(want) && i < len(got) && want[i] == got[i] {
				i++
			}
			t.Errorf("%s: %s differs (len %d vs %d, first divergence at byte %d)",
				label, name, len(want), len(got), i)
		}
	}
}

// TestSeededRunsAreByteIdentical runs the same seeded workload twice
// and demands byte-identical serialized artifacts.
func TestSeededRunsAreByteIdentical(t *testing.T) {
	a := runAndSerialize(t, 7)
	b := runAndSerialize(t, 7)
	assertIdentical(t, "same seed, repeated run", a, b)
	if len(a["trace.bin"]) == 0 || len(a["trace.jsonl"]) == 0 {
		t.Fatal("serialized traces are empty; the determinism check is vacuous")
	}
}

// TestDifferentSeedsDiffer guards the guard: if two different seeds
// produced identical traces, the identity assertions above would be
// passing trivially.
func TestDifferentSeedsDiffer(t *testing.T) {
	a := runAndSerialize(t, 7)
	b := runAndSerialize(t, 8)
	if bytes.Equal(a["trace.bin"], b["trace.bin"]) {
		t.Error("different seeds produced identical binary traces")
	}
}

// sweepArtifacts runs the Figure 2 transfer sweep through the runpool
// executor at the given worker count and serializes every artifact it
// produces: the per-point summary line, each run's binary and JSONL
// trace, and each run's profile JSON (from a parallel profile-mode
// sweep). Any scheduling leak — results reduced in completion order,
// shared state between concurrent runs — shows up as a byte diff.
func sweepArtifacts(t *testing.T, workers int) []byte {
	t.Helper()
	base := ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 16, Reps: 2, BlockBytes: 32e6,
	}
	ks := []int{1, 2, 4}
	seeds := []int64{3, 5, 9}

	var buf bytes.Buffer
	for _, pt := range ensembleio.IORTransferSweepJ(base, ks, seeds, workers) {
		fmt.Fprintf(&buf, "k=%d transfer=%d mean=%v\n", pt.K, pt.TransferBytes, pt.MeanRateMBps)
		for _, run := range pt.Runs {
			if err := ensembleio.SaveTrace(&buf, run); err != nil {
				t.Fatalf("SaveTrace: %v", err)
			}
			if err := ensembleio.SaveTraceJSON(&buf, run); err != nil {
				t.Fatalf("SaveTraceJSON: %v", err)
			}
		}
	}

	pbase := base
	pbase.Mode = ensembleio.ProfileMode
	for _, pt := range ensembleio.IORTransferSweepJ(pbase, ks, seeds, workers) {
		for _, run := range pt.Runs {
			profile, err := ensembleio.ProfileOf(run)
			if err != nil {
				t.Fatalf("ProfileOf: %v", err)
			}
			if err := ensembleio.SaveProfile(&buf, profile); err != nil {
				t.Fatalf("SaveProfile: %v", err)
			}
		}
	}
	return buf.Bytes()
}

// TestSweepDeterministicAcrossWorkerCounts is the runpool determinism
// guarantee at its strongest: the serialized bytes of every trace and
// profile produced by IORTransferSweep must be identical whether the
// ensemble ran on one worker (-j 1, the plain sequential loop) or was
// fanned across four (-j 4), and whether GOMAXPROCS allows real
// parallelism or not.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	sequential := sweepArtifacts(t, 1)
	if len(sequential) == 0 {
		t.Fatal("sweep produced no serialized artifacts; the check is vacuous")
	}
	prev := runtime.GOMAXPROCS(4) // force real concurrency even on 1-core CI
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{4, 0} {
		parallel := sweepArtifacts(t, workers)
		if !bytes.Equal(sequential, parallel) {
			i := 0
			for i < len(sequential) && i < len(parallel) && sequential[i] == parallel[i] {
				i++
			}
			t.Errorf("-j 1 vs -j %d: artifacts differ (len %d vs %d, first divergence at byte %d)",
				workers, len(sequential), len(parallel), i)
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS runs the workload under
// GOMAXPROCS=1 and under GOMAXPROCS=4 (forced, so the check bites
// even on single-core CI runners): the engine's lock-step process
// scheduling must make the serialized results byte-identical either
// way.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	single := runAndSerialize(t, 7)
	runtime.GOMAXPROCS(4)
	parallel := runAndSerialize(t, 7)
	assertIdentical(t, "GOMAXPROCS=1 vs GOMAXPROCS=4", single, parallel)
}

// faultedArtifacts parses the all-five-fault-types scenario from its
// JSON spec form (the same path the CLIs' -faults flag exercises) and
// runs a seeded ensemble of faulted IOR simulations through RunMany at
// the given worker count, serializing every trace byte produced.
func faultedArtifacts(t *testing.T, workers int) []byte {
	t.Helper()
	const spec = `{
	  "name": "determinism",
	  "faults": [
	    {"type": "slow-ost", "ost": 3, "factor": 0.05},
	    {"type": "flaky-ost", "ost": 1, "start_sec": 1, "period_sec": 4, "stall_sec": 1},
	    {"type": "slow-node-link", "node": 2, "factor": 0.1},
	    {"type": "mds-brownout", "concurrency": 4, "slow_prob": 0.2, "slow_lo_sec": 0.1, "slow_hi_sec": 0.5},
	    {"type": "background-bursts", "mbps": 8000, "on_sec": 2, "off_sec": 3}
	  ]
	}`
	scenario, err := ensembleio.ParseScenario(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	seeds := []int64{3, 5, 9}
	runs := ensembleio.RunMany(workers, seeds, func(seed int64) *ensembleio.Run {
		return ensembleio.RunIOR(ensembleio.IORConfig{
			Machine: ensembleio.Franklin(), Tasks: 16, Reps: 2,
			BlockBytes: 32e6, TransferBytes: 8e6,
			FilePerProcess: true, StripeCount: 1,
			Faults: scenario, Seed: seed,
		})
	})
	var buf bytes.Buffer
	for _, run := range runs {
		fmt.Fprintf(&buf, "%s wall=%v\n", run.Name, run.Wall)
		if err := ensembleio.SaveTrace(&buf, run); err != nil {
			t.Fatalf("SaveTrace: %v", err)
		}
		if err := ensembleio.SaveTraceJSON(&buf, run); err != nil {
			t.Fatalf("SaveTraceJSON: %v", err)
		}
	}
	return buf.Bytes()
}

// telemetryArtifacts runs a seeded ensemble of faulted,
// telemetry-enabled IOR simulations at the given worker count and
// serializes every telemetry encoding: the metrics snapshot JSON, the
// span JSONL, and the Chrome trace export. Telemetry rides the same
// virtual-time determinism contract as the traces, so these bytes must
// not depend on the worker count either.
func telemetryArtifacts(t *testing.T, workers int) []byte {
	t.Helper()
	const spec = `{
	  "faults": [
	    {"type": "flaky-ost", "ost": 1, "start_sec": 1, "period_sec": 4, "stall_sec": 1},
	    {"type": "background-bursts", "mbps": 8000, "on_sec": 2, "off_sec": 3}
	  ]
	}`
	scenario, err := ensembleio.ParseScenario(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	seeds := []int64{3, 5, 9}
	runs := ensembleio.RunMany(workers, seeds, func(seed int64) *ensembleio.Run {
		return ensembleio.RunIOR(ensembleio.IORConfig{
			Machine: ensembleio.Franklin(), Tasks: 16, Reps: 2,
			BlockBytes: 32e6, TransferBytes: 8e6,
			Faults: scenario, Seed: seed, Telemetry: true,
		})
	})
	var buf bytes.Buffer
	for _, run := range runs {
		if err := ensembleio.SaveTelemetry(&buf, run); err != nil {
			t.Fatalf("SaveTelemetry: %v", err)
		}
		if err := ensembleio.SaveSpans(&buf, run); err != nil {
			t.Fatalf("SaveSpans: %v", err)
		}
		if err := ensembleio.SaveChromeTrace(&buf, run); err != nil {
			t.Fatalf("SaveChromeTrace: %v", err)
		}
	}
	return buf.Bytes()
}

// TestTelemetryDeterministicAcrossWorkerCounts pins the tentpole
// telemetry invariant: metric snapshots, span streams, and the
// Perfetto export are byte-identical whether the faulted ensemble ran
// sequentially or fanned across four workers, and across repeats.
func TestTelemetryDeterministicAcrossWorkerCounts(t *testing.T) {
	sequential := telemetryArtifacts(t, 1)
	if len(sequential) == 0 {
		t.Fatal("telemetry runs produced no serialized artifacts; the check is vacuous")
	}
	repeat := telemetryArtifacts(t, 1)
	if !bytes.Equal(sequential, repeat) {
		t.Error("repeated -j 1 telemetry artifacts differ")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parallel := telemetryArtifacts(t, 4)
	if !bytes.Equal(sequential, parallel) {
		i := 0
		for i < len(sequential) && i < len(parallel) && sequential[i] == parallel[i] {
			i++
		}
		t.Errorf("telemetry -j 1 vs -j 4: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(sequential), len(parallel), i)
	}
}

// analyticArtifacts serializes one representative run per workload
// family — faulted, telemetry-enabled IOR; MADbench; a GCRM dump large
// enough (640 writers > the fabric's exact threshold) to engage the
// quantized fast path and epoch memoization — with the analytic fast
// path on or off. Telemetry is included deliberately: the fast-forward
// counters (sim.ff_seconds, sim.ff_jumps) are serialized, so this
// pins the claim that both paths take identical analytic jumps.
func analyticArtifacts(t *testing.T, analyticOff bool) []byte {
	t.Helper()
	const spec = `{
	  "faults": [
	    {"type": "flaky-ost", "ost": 1, "start_sec": 1, "period_sec": 4, "stall_sec": 1},
	    {"type": "background-bursts", "mbps": 8000, "on_sec": 2, "off_sec": 3}
	  ]
	}`
	scenario, err := ensembleio.ParseScenario(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	m := ensembleio.Franklin()
	m.AnalyticOff = analyticOff
	mj := ensembleio.Jaguar()
	mj.AnalyticOff = analyticOff

	var buf bytes.Buffer
	ior := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: m, Tasks: 16, Reps: 2,
		BlockBytes: 32e6, TransferBytes: 8e6,
		Faults: scenario, Seed: 7, Telemetry: true,
	})
	mad := ensembleio.RunMADbench(ensembleio.MADbenchConfig{
		Machine: mj, Tasks: 36, Matrices: 2, Seed: 11,
	})
	gcrm := ensembleio.RunGCRM(ensembleio.GCRMConfig{
		Machine: m, Tasks: 640, Seed: 3,
	})
	for _, run := range []*ensembleio.Run{ior, mad, gcrm} {
		fmt.Fprintf(&buf, "%s wall=%v\n", run.Name, run.Wall)
		if err := ensembleio.SaveTrace(&buf, run); err != nil {
			t.Fatalf("SaveTrace: %v", err)
		}
		if err := ensembleio.SaveTraceJSON(&buf, run); err != nil {
			t.Fatalf("SaveTraceJSON: %v", err)
		}
	}
	if err := ensembleio.SaveTelemetry(&buf, ior); err != nil {
		t.Fatalf("SaveTelemetry: %v", err)
	}
	if err := ensembleio.SaveSpans(&buf, ior); err != nil {
		t.Fatalf("SaveSpans: %v", err)
	}
	if err := ensembleio.SaveChromeTrace(&buf, ior); err != nil {
		t.Fatalf("SaveChromeTrace: %v", err)
	}
	return buf.Bytes()
}

// TestAnalyticOnOffByteIdentical is the fast path's hard gate: the
// analytic fabric (calendar wakes, closed-form completions, epoch
// memoization) and the pure event-path fallback (-analytic=off) must
// serialize byte-identical artifacts for every workload family. The
// two implementations share one event schedule and one physics; only
// the computation strategy differs, so any byte diff is a bug in the
// fast path, never an accepted approximation.
func TestAnalyticOnOffByteIdentical(t *testing.T) {
	on := analyticArtifacts(t, false)
	if len(on) == 0 {
		t.Fatal("analytic runs produced no serialized artifacts; the check is vacuous")
	}
	off := analyticArtifacts(t, true)
	if !bytes.Equal(on, off) {
		i := 0
		for i < len(on) && i < len(off) && on[i] == off[i] {
			i++
		}
		t.Errorf("analytic on vs off: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(on), len(off), i)
	}
}

// memoArtifacts runs a seeded ensemble of GCRM collective dumps — the
// workload whose repeated per-epoch write phases the memo cache
// replays — through RunMany at the given worker count.
func memoArtifacts(t *testing.T, workers int, analyticOff bool) []byte {
	t.Helper()
	seeds := []int64{3, 5, 9}
	runs := ensembleio.RunMany(workers, seeds, func(seed int64) *ensembleio.Run {
		m := ensembleio.Franklin()
		m.AnalyticOff = analyticOff
		return ensembleio.RunGCRM(ensembleio.GCRMConfig{
			Machine: m, Tasks: 640, Aggregators: 80, Seed: seed,
		})
	})
	var buf bytes.Buffer
	for _, run := range runs {
		fmt.Fprintf(&buf, "%s wall=%v\n", run.Name, run.Wall)
		if err := ensembleio.SaveTrace(&buf, run); err != nil {
			t.Fatalf("SaveTrace: %v", err)
		}
	}
	return buf.Bytes()
}

// TestMemoizedRunsDeterministicAcrossWorkerCounts pins epoch
// memoization into the determinism contract twice over: cache-hit
// replay must be byte-identical to the cold (never-memoized,
// -analytic=off) run, and the memoized ensemble must serialize
// identically at -j 1 and -j 4 — each run's cache is fabric-local, so
// worker scheduling must not be able to leak entries between runs.
func TestMemoizedRunsDeterministicAcrossWorkerCounts(t *testing.T) {
	memoized := memoArtifacts(t, 1, false)
	if len(memoized) == 0 {
		t.Fatal("memoized runs produced no serialized artifacts; the check is vacuous")
	}
	cold := memoArtifacts(t, 1, true)
	if !bytes.Equal(memoized, cold) {
		t.Error("memo cache-hit replay differs from the cold event-path run")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parallel := memoArtifacts(t, 4, false)
	if !bytes.Equal(memoized, parallel) {
		i := 0
		for i < len(memoized) && i < len(parallel) && memoized[i] == parallel[i] {
			i++
		}
		t.Errorf("memoized -j 1 vs -j 4: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(memoized), len(parallel), i)
	}
}

// TestFaultScenariosDeterministicAcrossWorkerCounts extends the
// determinism contract to fault injection: stall windows and burst
// schedules are pure functions of virtual time and the brownout draws
// from the run's seeded RNG, so the same scenario JSON plus the same
// seeds must serialize byte-identically at -j 1 and -j 4.
func TestFaultScenariosDeterministicAcrossWorkerCounts(t *testing.T) {
	sequential := faultedArtifacts(t, 1)
	if len(sequential) == 0 {
		t.Fatal("faulted sweep produced no serialized artifacts; the check is vacuous")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parallel := faultedArtifacts(t, 4)
	if !bytes.Equal(sequential, parallel) {
		i := 0
		for i < len(sequential) && i < len(parallel) && sequential[i] == parallel[i] {
			i++
		}
		t.Errorf("faulted -j 1 vs -j 4: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(sequential), len(parallel), i)
	}
}

// generatedSpecArtifacts pushes a batch of seeded generator specs
// (internal/wldsl.Generate — the fuzz side of the workload DSL)
// through the spec interpreter via RunMany at the given worker count
// and fast-path setting, and serializes every artifact each run
// produces. The programs are compiled once, up front: compilation is
// pure, so sharing a Program between runs must also be safe.
func generatedSpecArtifacts(t *testing.T, workers int, analyticOff bool) []byte {
	t.Helper()
	seeds := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	progs := make([]*ensembleio.WorkloadProgram, len(seeds))
	for i, seed := range seeds {
		spec := ensembleio.GenerateWorkload(seed)
		prog, err := ensembleio.CompileWorkload(spec)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, spec.Name, err)
		}
		progs[i] = prog
	}
	m := ensembleio.Franklin()
	m.AnalyticOff = analyticOff
	runs := ensembleio.RunMany(workers, seeds, func(seed int64) *ensembleio.Run {
		return progs[seed].Run(ensembleio.WorkloadRunConfig{
			Machine: m, Seed: 100 + seed, Telemetry: true,
		})
	})
	var buf bytes.Buffer
	for _, run := range runs {
		fmt.Fprintf(&buf, "%s wall=%v\n", run.Name, run.Wall)
		if err := ensembleio.SaveTrace(&buf, run); err != nil {
			t.Fatalf("SaveTrace: %v", err)
		}
		if err := ensembleio.SaveTraceJSON(&buf, run); err != nil {
			t.Fatalf("SaveTraceJSON: %v", err)
		}
		if err := ensembleio.SaveTelemetry(&buf, run); err != nil {
			t.Fatalf("SaveTelemetry: %v", err)
		}
		if err := ensembleio.SaveSpans(&buf, run); err != nil {
			t.Fatalf("SaveSpans: %v", err)
		}
	}
	return buf.Bytes()
}

// TestGeneratedSpecsDeterministic extends the determinism contract to
// the workload DSL's generated corpus: every spec the seeded generator
// emits must serialize byte-identically across worker counts (-j 1 vs
// -j 4) and across the analytic fast path being on or off — the same
// gates the hand-coded workloads pass, applied to the grammar's
// random corner cases in bulk.
func TestGeneratedSpecsDeterministic(t *testing.T) {
	sequential := generatedSpecArtifacts(t, 1, false)
	if len(sequential) == 0 {
		t.Fatal("generated specs produced no serialized artifacts; the check is vacuous")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parallel := generatedSpecArtifacts(t, 4, false)
	if !bytes.Equal(sequential, parallel) {
		i := 0
		for i < len(sequential) && i < len(parallel) && sequential[i] == parallel[i] {
			i++
		}
		t.Errorf("generated specs -j 1 vs -j 4: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(sequential), len(parallel), i)
	}
	eventPath := generatedSpecArtifacts(t, 1, true)
	if !bytes.Equal(sequential, eventPath) {
		i := 0
		for i < len(sequential) && i < len(eventPath) && sequential[i] == eventPath[i] {
			i++
		}
		t.Errorf("generated specs analytic on vs off: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(sequential), len(eventPath), i)
	}
}

// tenancyArtifacts runs a batch of seeded two-tenant co-runs — the
// generator's adversarial tiny-transfer family co-scheduled against an
// arbitrary generated peer — through a worker pool, analyzes each for
// interference (which re-simulates both solo baselines), and
// serializes every artifact: per-tenant binary traces, the merged
// telemetry snapshot and span stream, and the interference report
// JSON.
func tenancyArtifacts(t *testing.T, workers int, analyticOff bool) []byte {
	t.Helper()
	seeds := []int64{0, 1, 2, 3}
	m := ensembleio.Franklin()
	m.AnalyticOff = analyticOff
	out := make([][]byte, len(seeds))
	ensembleio.RunMany(workers, []int{0, 1, 2, 3}, func(i int) *ensembleio.Run {
		seed := seeds[i]
		cfg := ensembleio.TenancyConfig{Machine: m, Seed: 50 + seed, Telemetry: true}
		tenants := []ensembleio.Tenant{
			{Name: "adv", Spec: ensembleio.GenerateAdversarialWorkload(seed)},
			{Name: "peer", Spec: ensembleio.GenerateWorkload(seed + 100), StartSec: 1},
		}
		res, err := ensembleio.RunTenants(cfg, tenants)
		if err != nil {
			t.Errorf("seed %d: RunTenants: %v", seed, err)
			return nil
		}
		rep, err := ensembleio.AnalyzeInterference(cfg, tenants, res, ensembleio.InterferenceConfig{})
		if err != nil {
			t.Errorf("seed %d: AnalyzeInterference: %v", seed, err)
			return nil
		}
		var buf bytes.Buffer
		for j := range res.Tenants {
			tr := &res.Tenants[j]
			fmt.Fprintf(&buf, "%s seed=%d [%v, %v]\n", tr.Name, seed, tr.StartSec, tr.EndSec)
			if err := ensembleio.SaveTrace(&buf, tr.Run); err != nil {
				t.Errorf("seed %d: SaveTrace(%s): %v", seed, tr.Name, err)
			}
		}
		if err := ensembleio.SaveTelemetrySnapshot(&buf, res.Telemetry); err != nil {
			t.Errorf("seed %d: SaveTelemetrySnapshot: %v", seed, err)
		}
		if err := ensembleio.SaveSpanList(&buf, res.Spans); err != nil {
			t.Errorf("seed %d: SaveSpanList: %v", seed, err)
		}
		repJSON, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Errorf("seed %d: marshal report: %v", seed, err)
		}
		buf.Write(repJSON)
		out[i] = buf.Bytes()
		return res.Tenants[0].Run
	})
	var all bytes.Buffer
	for _, b := range out {
		all.Write(b)
	}
	return all.Bytes()
}

// TestTenancyDeterministic extends the byte-identity contract to
// multi-tenant co-runs: a shared-platform session with staggered
// tenants, per-tenant accounting, merged telemetry, and the full
// interference analysis (solo baselines included) must serialize
// byte-identically across worker counts (-j 1 vs -j 4) and across the
// analytic fast path being on or off.
func TestTenancyDeterministic(t *testing.T) {
	sequential := tenancyArtifacts(t, 1, false)
	if len(sequential) == 0 {
		t.Fatal("tenancy co-runs produced no serialized artifacts; the check is vacuous")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parallel := tenancyArtifacts(t, 4, false)
	if !bytes.Equal(sequential, parallel) {
		i := 0
		for i < len(sequential) && i < len(parallel) && sequential[i] == parallel[i] {
			i++
		}
		t.Errorf("tenancy co-runs -j 1 vs -j 4: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(sequential), len(parallel), i)
	}
	eventPath := tenancyArtifacts(t, 1, true)
	if !bytes.Equal(sequential, eventPath) {
		i := 0
		for i < len(sequential) && i < len(eventPath) && sequential[i] == eventPath[i] {
			i++
		}
		t.Errorf("tenancy co-runs analytic on vs off: artifacts differ (len %d vs %d, first divergence at byte %d)",
			len(sequential), len(eventPath), i)
	}
}

// TestCacheHitByteIdenticalToFreshRun is the determinism-suite entry
// for the content-addressed run cache: an artifact set served from the
// cache must be byte-identical to a fresh computation of the same
// scenario — across worker counts (-j1 vs -j4) and across the analytic
// fast path being on or off (the platform section of the cache key
// excludes AnalyticOff, so one cached run serves both sim paths).
func TestCacheHitByteIdenticalToFreshRun(t *testing.T) {
	specs := []*ensembleio.WorkloadSpec{
		ensembleio.GenerateWorkload(1),
		ensembleio.GenerateWorkload(2),
	}
	entriesOn := make([]ensembleio.CampaignEntry, 0, len(specs))
	entriesOff := make([]ensembleio.CampaignEntry, 0, len(specs))
	for i, spec := range specs {
		on := ensembleio.Franklin()
		off := ensembleio.Franklin()
		off.AnalyticOff = true
		entriesOn = append(entriesOn, ensembleio.CampaignEntry{
			Name: spec.Name, Spec: spec, Platform: on, Seed: int64(i + 1),
		})
		entriesOff = append(entriesOff, ensembleio.CampaignEntry{
			Name: spec.Name, Spec: spec, Platform: off, Seed: int64(i + 1),
		})
	}

	// Fresh baseline: no cache, analytic on, one worker.
	fresh, _, err := ensembleio.RunCampaign(entriesOn, ensembleio.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	store, err := ensembleio.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Populate at -j4 with the event path (analytic off).
	populate, popStats, err := ensembleio.RunCampaign(entriesOff, ensembleio.CampaignOptions{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if popStats.Misses != len(specs) {
		t.Fatalf("populate stats %+v", popStats)
	}
	// Serve at -j1 with the analytic path on: every entry must hit, and
	// -cache-verify style recomputation must agree byte for byte.
	served, srvStats, err := ensembleio.RunCampaign(entriesOn, ensembleio.CampaignOptions{Workers: 1, Store: store, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if srvStats.Hits != len(specs) || srvStats.Misses != 0 {
		t.Fatalf("serve stats %+v", srvStats)
	}
	for i := range fresh {
		if err := ensembleio.DiffCacheArtifacts(fresh[i].Artifacts, populate[i].Artifacts); err != nil {
			t.Errorf("entry %d: fresh(j1,analytic) vs computed(j4,event): %v", i, err)
		}
		if err := ensembleio.DiffCacheArtifacts(fresh[i].Artifacts, served[i].Artifacts); err != nil {
			t.Errorf("entry %d: fresh(j1,analytic) vs cache-served(j1,analytic): %v", i, err)
		}
	}
}
