// LLN splitting: reproduce the Figure 2 exploration — splitting each
// task's 512 MB block into k successive write calls makes the worst
// case faster even though total bytes are unchanged, and the Eq.-1 /
// Law-of-Large-Numbers machinery predicts it from the k=1 ensemble
// alone.
//
//	go run ./examples/lln-splitting
package main

import (
	"fmt"
	"os"
	"sort"

	"ensembleio"
	"ensembleio/internal/report"
)

func main() {
	fmt.Println("IOR 1024 x 512 MB on Franklin, splitting each block into k calls")
	fmt.Println()

	// The four splittings are independent seeded runs — fan them
	// across all cores. The reduction below reads runs[i] in k order,
	// so the table is identical to the sequential version.
	ks := []int{1, 2, 4, 8}
	runs := ensembleio.RunMany(0, ks, func(k int) *ensembleio.Run {
		return ensembleio.RunIOR(ensembleio.IORConfig{
			Machine: ensembleio.Franklin(), Tasks: 1024, Reps: 5,
			TransferBytes: 512e6 / int64(k), Seed: 1,
		})
	})

	// The k=1 single-call ensemble: everything the statistical model
	// needs is in this one distribution.
	single := ensembleio.Durations(runs[0], ensembleio.OpWrite)

	rows := [][]string{{"k", "transfer", "measured MB/s", "task-total CV", "predicted slowest (s)"}}
	for i, k := range ks {
		run := runs[i]

		// Group each rank's k calls back into per-task totals.
		sums := map[[2]int]float64{}
		counts := map[int]int{}
		for _, e := range run.Collector.Events {
			if e.Op != ensembleio.OpWrite {
				continue
			}
			rep := counts[e.Rank] / k
			counts[e.Rank]++
			sums[[2]int{e.Rank, rep}] += float64(e.Dur)
		}
		// Fold totals in sorted (rank, rep) order so the ensemble is
		// reproducible run to run.
		taskKeys := make([][2]int, 0, len(sums))
		for tk := range sums {
			taskKeys = append(taskKeys, tk)
		}
		sort.Slice(taskKeys, func(i, j int) bool {
			if taskKeys[i][0] != taskKeys[j][0] {
				return taskKeys[i][0] < taskKeys[j][0]
			}
			return taskKeys[i][1] < taskKeys[j][1]
		})
		totals := ensembleio.NewDataset(nil)
		for _, tk := range taskKeys {
			totals.Add(sums[tk])
		}

		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%d MB", 512/k),
			report.F(run.AggregateMBps(), 0),
			report.F(totals.CV(), 3),
			report.F(ensembleio.SplitPrediction(single, k, 1024), 1),
		})
	}
	report.Table(os.Stdout, rows)

	fmt.Println(`
Reading the table:
  - measured MB/s rises with k even though the same bytes move — the
    run is paced by the slowest task, and splitting narrows per-task
    totals (Law of Large Numbers), pulling the worst case toward the
    mean;
  - task-total CV falls roughly like 1/sqrt(k);
  - the prediction column uses ONLY the k=1 ensemble: the k-fold
    convolution of the single-call distribution, pushed through the
    slowest-of-1024 order statistic (Eq. 1). The trend matches the
    measurement without re-running anything.`)
}
