// MADbench diagnosis: walk the §IV investigation end to end — observe
// anomalous run time on Franklin, use the ensemble view to localize
// the pathology to strided reads 4-8 under interleaved writes, apply
// the file-system patch, and confirm the 4x recovery.
//
//	go run ./examples/madbench-diagnosis
package main

import (
	"fmt"
	"os"

	"ensembleio"
	"ensembleio/internal/report"
)

func main() {
	// The three runs the walkthrough needs (buggy Franklin, Jaguar,
	// patched Franklin) are independent: simulate them up front across
	// all cores, then tell the story from the results. Each seeded run
	// is bit-identical to its sequential execution.
	machines := []ensembleio.Platform{
		ensembleio.Franklin(), ensembleio.Jaguar(), ensembleio.FranklinPatched(),
	}
	runs := ensembleio.RunMany(0, machines, func(m ensembleio.Platform) *ensembleio.Run {
		return ensembleio.RunMADbench(ensembleio.MADbenchConfig{Machine: m, Seed: 3})
	})
	bug, jaguar, patched := runs[0], runs[1], runs[2]

	fmt.Println("step 1: the complaint — MADbench is mysteriously slow on Franklin")
	fmt.Printf("  franklin: %.0f s     jaguar (same workload): %.0f s\n\n",
		float64(bug.Wall), float64(jaguar.Wall))

	fmt.Println("step 2: the ensemble view — the read distribution has a shoulder")
	reads := ensembleio.Durations(bug, ensembleio.OpRead)
	h := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
	h.AddAll(reads)
	report.Histogram(os.Stdout, "  franklin reads (s), log bins", h)
	fmt.Printf("  median %.1fs but p99 %.0fs — a heavy, read-specific tail\n\n",
		reads.Quantile(0.5), reads.Quantile(0.99))

	fmt.Println("step 3: localize — slice by phase; the tail lives in W reads 4-8 and grows")
	rows := [][]string{{"phase", "read p95 (s)"}}
	for _, ph := range ensembleio.Phases(bug) {
		d := ensembleio.NewDataset(nil)
		for _, e := range ph.Events {
			if e.Op == ensembleio.OpRead {
				d.Add(float64(e.Dur))
			}
		}
		if d.Len() > 0 {
			rows = append(rows, []string{ph.Name, report.F(d.Quantile(0.95), 1)})
		}
	}
	report.Table(os.Stdout, rows)
	fmt.Println()

	fmt.Println("step 4: the advisor reads the same signature from the trace")
	for _, f := range ensembleio.Diagnose(bug) {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println()

	fmt.Println("step 5: the fix — install the patch that removes strided read-ahead detection")
	pr := ensembleio.Durations(patched, ensembleio.OpRead)
	fmt.Printf("  patched franklin: %.0f s (%.1fx speedup; paper: 4.2x)\n",
		float64(patched.Wall), float64(bug.Wall/patched.Wall))
	fmt.Printf("  slowest read %.0fs -> %.0fs; run now comparable to Jaguar's %.0f s\n",
		reads.Max(), pr.Max(), float64(jaguar.Wall))
}
