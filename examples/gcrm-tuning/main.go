// GCRM tuning: walk the §V optimization ladder. At each step the
// ensemble analysis (per-task rate distribution + advisor findings)
// names the next bottleneck, the corresponding optimization is
// applied, and the run time falls — from the baseline to >4x faster.
//
//	go run ./examples/gcrm-tuning        (full 10,240-task scale)
//	go run ./examples/gcrm-tuning -small (2,560 tasks, quicker)
package main

import (
	"flag"
	"fmt"

	"ensembleio"
)

func main() {
	small := flag.Bool("small", false, "run at 2,560 tasks instead of 10,240")
	flag.Parse()
	tasks := 10240
	if *small {
		tasks = 2560
	}

	type step struct {
		title string
		apply func(*ensembleio.GCRMConfig)
		note  string
	}
	steps := []step{
		{"baseline: every task writes its own 1.6 MB records + rank 0 streams metadata",
			func(c *ensembleio.GCRMConfig) {},
			"the advisor flags writer oversubscription, misalignment and serialized metadata"},
		{"opt 1 — collective buffering: 80 aggregator writers (paper: 1.6x)",
			func(c *ensembleio.GCRMConfig) { c.Aggregators = 80 },
			"per-writer rates jump to the ~100 MB/s scale; metadata still dominates"},
		{"opt 2 — align records to 1 MB stripes (paper: 310 -> 150 s cumulative)",
			func(c *ensembleio.GCRMConfig) { c.Aggregators = 80; c.Align = true },
			"the slow conflict bulge disappears; serialized metadata is now the wall"},
		{"opt 3 — aggregate metadata into one deferred 1 MB write (paper: 75 s, >4x)",
			func(c *ensembleio.GCRMConfig) { c.Aggregators = 80; c.Align = true; c.AggregateMetadata = true },
			"no small-write stream left; the job is data-bound"},
	}

	// The four ladder stages are independent seeded runs: fan them
	// across all cores (ordered reduction — runs[i] is step i, so the
	// printed walk is identical to running them one by one).
	runs := ensembleio.RunMany(0, steps, func(s step) *ensembleio.Run {
		cfg := ensembleio.GCRMConfig{Machine: ensembleio.Franklin(), Tasks: tasks, Seed: 1}
		s.apply(&cfg)
		return ensembleio.RunGCRM(cfg)
	})

	var baseline float64
	for i, step := range steps {
		run := runs[i]
		if i == 0 {
			baseline = float64(run.Wall)
		}

		fmt.Printf("%s\n", step.title)
		data := ensembleio.DataWrites(run)
		fmt.Printf("  run %.0f s (%.1fx vs baseline), sustained %.0f MB/s, median per-writer %.2f MB/s\n",
			float64(run.Wall), baseline/float64(run.Wall), run.AggregateMBps(), 1/data.Quantile(0.5))
		findings := ensembleio.Diagnose(run)
		if len(findings) == 0 {
			fmt.Println("  advisor: clean")
		}
		for _, f := range findings {
			fmt.Printf("  advisor: %s\n", f)
		}
		fmt.Printf("  -> %s\n\n", step.note)
	}
}
