// Quickstart: run a modest IOR experiment on the simulated Franklin
// machine, then analyse the write-time ensemble — the minimal
// events-to-ensembles workflow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"ensembleio"
	"ensembleio/internal/report"
)

func main() {
	// 256 tasks, each writing 512 MB to a shared file, twice.
	run := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(),
		Tasks:   256,
		Reps:    2,
		Seed:    1,
	})
	fmt.Printf("run time %.1f s, aggregate %.0f MB/s over %d write events\n\n",
		float64(run.Wall), run.AggregateMBps(), len(run.Collector.Events))

	// The event view: any single write's duration is unpredictable...
	writes := ensembleio.Durations(run, ensembleio.OpWrite)
	fmt.Printf("three individual writes: %.1fs, %.1fs, %.1fs  <- events look erratic\n\n",
		writes.Values()[0], writes.Values()[1], writes.Values()[2])

	// ...but the ensemble is structured and reproducible.
	fmt.Println("the ensemble:", writes.Moments())
	fmt.Println()
	h := ensembleio.NewHistogram(ensembleio.LinearBins(0, writes.Max()*1.01, 50))
	h.AddAll(writes)
	report.Histogram(os.Stdout, "write completion times (s)", h)

	fmt.Println("\ndetected modes (the R / 2R / 4R structure of Fig 1c):")
	for _, m := range h.Modes(ensembleio.ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04}) {
		fmt.Printf("  %.1f s  (rate %.1f MB/s, %2.0f%% of events)\n",
			m.Center, 512/m.Center, m.Mass*100)
	}

	// The slowest-of-N order statistic governs the barrier time.
	fmt.Printf("\nexpected slowest of %d tasks (Eq. 1): %.1f s; observed max %.1f s\n",
		run.Tasks, writes.ExpectedMaxOfN(run.Tasks), writes.Max())

	if findings := ensembleio.Diagnose(run); len(findings) > 0 {
		fmt.Println("\nadvisor:")
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
	}
}
