// Checkpoint tuning: apply the ensemble methodology to the generic
// compute/checkpoint cycle that motivates the paper — measure the
// write ensemble of a baseline run, use the order-statistic/LLN
// predictor to pick a transfer split, and verify the improvement by
// re-running.
//
//	go run ./examples/checkpoint-tuning
package main

import (
	"fmt"
	"os"

	"ensembleio"
	"ensembleio/internal/report"
)

func main() {
	base := ensembleio.RunCheckpoint(ensembleio.CheckpointConfig{
		Machine: ensembleio.Franklin(),
		Tasks:   256,
		Steps:   4,
		Seed:    1,
	})
	fmt.Printf("baseline: wall %.0fs, I/O fraction %.0f%%, per-step checkpoint cost %v\n\n",
		float64(base.Wall), base.IOFraction()*100, fmtSteps(base.StepIOSec))

	// The single-call write ensemble predicts how splitting would pay.
	single := ensembleio.Durations(base.Run, ensembleio.OpWrite)
	rows := [][]string{{"k", "predicted slowest task (s)"}}
	bestK, bestPred := 1, ensembleio.SplitPrediction(single, 1, base.Tasks)
	for _, k := range []int{1, 2, 4, 8, 16} {
		pred := ensembleio.SplitPrediction(single, k, base.Tasks)
		rows = append(rows, []string{fmt.Sprint(k), report.F(pred, 1)})
		if pred < bestPred {
			bestK, bestPred = k, pred
		}
	}
	report.Table(os.Stdout, rows)
	fmt.Printf("\npredictor picks k=%d; re-running with %d MB transfers...\n\n",
		bestK, 256/bestK)

	tuned := ensembleio.RunCheckpoint(ensembleio.CheckpointConfig{
		Machine:       ensembleio.Franklin(),
		Tasks:         256,
		Steps:         4,
		TransferBytes: 256e6 / int64(bestK),
		Seed:          2,
	})
	fmt.Printf("tuned:    wall %.0fs, I/O fraction %.0f%%, per-step checkpoint cost %v\n",
		float64(tuned.Wall), tuned.IOFraction()*100, fmtSteps(tuned.StepIOSec))
	fmt.Printf("checkpoint time change: %.0f%%\n", (sum(tuned.StepIOSec)/sum(base.StepIOSec)-1)*100)
}

func fmtSteps(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = report.F(x, 1)
	}
	return out
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
