// Straggler hunt: localize one degraded OST out of 48 from the
// ensemble alone. A 1024-task file-per-process IOR run (stripe count
// 1, so each task's file lives on exactly one OST) is executed twice —
// clean, then with OST 7 silently serving at 1% speed — and the
// ensemble statistics plus the server-side per-OST counters name the
// culprit without reading a single event timeline.
//
//	go run ./examples/straggler-hunt
package main

import (
	"fmt"
	"os"

	"ensembleio"
	"ensembleio/internal/report"
)

func main() {
	// Both runs are independent seeded simulations: fan them out.
	scenarios := []*ensembleio.Scenario{
		nil, // clean baseline
		{Name: "straggler", Faults: []ensembleio.Fault{
			&ensembleio.SlowOST{OST: 7, Factor: 0.01},
		}},
	}
	runs := ensembleio.RunMany(0, scenarios, func(s *ensembleio.Scenario) *ensembleio.Run {
		return ensembleio.RunIOR(ensembleio.IORConfig{
			Machine:        ensembleio.Franklin(),
			Tasks:          1024,
			BlockBytes:     256e6,
			TransferBytes:  32e6,
			Reps:           2,
			FilePerProcess: true,
			StripeCount:    1, // one OST per file: stragglers stay localized
			Faults:         s,
			Seed:           11,
		})
	})
	clean, bad := runs[0], runs[1]

	fmt.Println("step 1: the complaint — the same job got slower overnight")
	fmt.Printf("  yesterday: %.0f s     today: %.0f s (%.1fx)\n\n",
		float64(clean.Wall), float64(bad.Wall), float64(bad.Wall/clean.Wall))

	fmt.Println("step 2: the ensemble view — a small, well-separated slow mode appears")
	writes := ensembleio.Durations(bad, ensembleio.OpWrite)
	h := ensembleio.NewHistogram(ensembleio.LinearBins(0, writes.Max()*1.01, 60))
	h.AddAll(writes)
	report.Histogram(os.Stdout, "  write completion times (s)", h)
	fmt.Printf("  median %.1fs, max %.1fs — most tasks are fine; a subpopulation is not\n\n",
		writes.Quantile(0.5), writes.Max())

	fmt.Println("step 3: weigh the slow mode — its mass matches one OST's share of the files")
	slow := 0
	med := writes.Quantile(0.5)
	for _, v := range writes.Sorted() {
		if v >= 3*med {
			slow++
		}
	}
	fmt.Printf("  %.1f%% of writes run >=3x the median; 1/48 OSTs = %.1f%% of files\n\n",
		100*float64(slow)/float64(writes.Len()), 100.0/48)

	fmt.Println("step 4: cross-check the server-side per-OST counters")
	rows := [][]string{{"ost", "mean MB/s", "MB served"}}
	minIdx, minRate := -1, 0.0
	for i, o := range bad.FSStats.PerOST {
		r := o.MeanMBps()
		if minIdx < 0 || r < minRate {
			minIdx, minRate = i, r
		}
		// Print a sample plus the eventual culprit, keeping the table
		// short.
		if i < 3 || i == 7 {
			rows = append(rows, []string{fmt.Sprint(i), report.F(r, 1), report.F(o.MB, 0)})
		}
	}
	report.Table(os.Stdout, rows)
	fmt.Printf("  slowest OST: %d at %.1f MB/s\n\n", minIdx, minRate)

	fmt.Println("step 5: the advisor fuses both views and names the OST")
	for _, f := range ensembleio.Diagnose(bad) {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println()
	fmt.Println("step 6: the clean baseline stays clean — no false alarms yesterday")
	if fs := ensembleio.Diagnose(clean); len(fs) == 0 {
		fmt.Println("  advisor findings: none")
	} else {
		for _, f := range fs {
			fmt.Printf("  %s\n", f)
		}
	}
}
