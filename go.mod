module ensembleio

go 1.24
