package ensembleio

// Ablation tests: remove one modelled mechanism at a time and assert
// that the corresponding paper phenomenon disappears — evidence that
// each phenomenon in the reproduction is produced by the mechanism
// DESIGN.md §5 attributes it to, not by accident.

import (
	"bytes"
	"testing"
)

// TestAblationSlotScheduling: with the flusher forced to pure fair
// sharing, the Figure 1c harmonic mode structure collapses.
func TestAblationSlotScheduling(t *testing.T) {
	countModes := func(weights [3]float64) int {
		m := Franklin()
		m.SlotWeights = weights
		run := RunIOR(IORConfig{Machine: m, Tasks: 1024, Reps: 3, Seed: 9})
		writes := Durations(run, OpWrite)
		h := NewHistogram(LinearBins(0, writes.Max()*1.01, 100))
		h.AddAll(writes)
		return len(h.Modes(ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04}))
	}
	mixed := countModes(Franklin().SlotWeights)
	fair := countModes([3]float64{0, 0, 1})
	if mixed < 3 {
		t.Errorf("mixed slots produced %d modes, want >= 3", mixed)
	}
	if fair >= 3 {
		t.Errorf("pure fair share still produced %d modes; harmonics should collapse", fair)
	}
}

// TestAblationOSTLuck: without the non-work-conserving slow-OST tail,
// transfer splitting loses most of its benefit — the Figure 2 effect
// needs a tail that freed bandwidth cannot compensate.
func TestAblationOSTLuck(t *testing.T) {
	gain := func(luck bool) float64 {
		m := Franklin()
		if !luck {
			m.SlowLuckProb = 0
		}
		rate := func(k int) float64 {
			sum := 0.0
			for seed := int64(20); seed < 23; seed++ {
				sum += RunIOR(IORConfig{
					Machine: m, Tasks: 1024, Reps: 3,
					TransferBytes: 512e6 / int64(k), Seed: seed,
				}).AggregateMBps()
			}
			return sum / 3
		}
		return rate(8)/rate(1) - 1
	}
	withLuck := gain(true)
	without := gain(false)
	if withLuck < 0.05 {
		t.Errorf("with OST luck, splitting gain %.1f%%, want >= 5%%", withLuck*100)
	}
	if without > withLuck/2 {
		t.Errorf("without OST luck, splitting gain %.1f%% vs %.1f%% with: the tail should drive the effect",
			without*100, withLuck*100)
	}
}

// TestAblationConflicts: without extent-lock conflicts the GCRM
// baseline's straggler-driven slowness shrinks markedly (scaled-down
// run for test-time economy).
func TestAblationConflicts(t *testing.T) {
	wall := func(conflicts bool) float64 {
		m := Franklin()
		if !conflicts {
			m.ConflictProbPerWriterPerOST = 0
			m.ConflictProbMax = 0
		}
		return float64(RunGCRM(GCRMConfig{Machine: m, Tasks: 2560, Seed: 4}).Wall)
	}
	with := wall(true)
	without := wall(false)
	if without > with*0.9 {
		t.Errorf("baseline %.0fs with conflicts vs %.0fs without: conflicts should cost >= 10%%", with, without)
	}
}

// TestAblationWriteInterference: the read pathology requires
// interleaved writes; a read-only strided workload stays fast even
// with the defect present (this is what keeps MADbench's final
// read-only phase clean).
func TestAblationWriteInterference(t *testing.T) {
	// The C phase of the cached bug run IS the ablation: identical
	// strided reads, no writes in flight.
	run := madbenchRun("franklin")
	var wSlow, cSlow int
	for _, ph := range Phases(run) {
		for _, e := range ph.Events {
			if e.Op != OpRead || e.Dur < 30 {
				continue
			}
			switch ph.Name[0] {
			case 'W':
				wSlow++
			case 'C':
				cSlow++
			}
		}
	}
	if wSlow == 0 {
		t.Fatal("no slow reads in the interleaved phase at all")
	}
	if cSlow > wSlow/10 {
		t.Errorf("read-only phases have %d slow reads vs %d in interleaved phases: pathology should need writes",
			cSlow, wSlow)
	}
}

// TestPatternDetectionOnWorkloads: the online pattern detector (the
// paper's future-work extension) classifies the real workloads'
// streams correctly — MADbench reads are strided at the matrix slot
// pitch, IOR read-back streams are sequential.
func TestPatternDetectionOnWorkloads(t *testing.T) {
	pd := DetectPatterns(madbenchRun("franklin"))
	s := pd.Summarize(OpRead)
	if s.Strided < s.Streams*8/10 {
		t.Errorf("MADbench read streams: %+v, want mostly strided", s)
	}
	if s.DominantStride != 301e6 {
		t.Errorf("dominant stride %d, want 301e6 (the matrix slot pitch)", s.DominantStride)
	}

	ior := RunIOR(IORConfig{
		Machine: Franklin(), Tasks: 64, Reps: 1,
		BlockBytes: 128e6, TransferBytes: 16e6, ReadBack: true, Seed: 2,
	})
	s = DetectPatterns(ior).Summarize(OpRead)
	if s.Sequential != s.Streams || s.Streams == 0 {
		t.Errorf("IOR read-back streams: %+v, want all sequential", s)
	}
}

// TestProfilePersistenceEndToEnd: a profile-mode run can be persisted
// as a few-kilobyte distribution file that preserves the ensemble
// statistics of the full trace — the §VI claim that most of the
// performance data never needs to be stored.
func TestProfilePersistenceEndToEnd(t *testing.T) {
	run := RunIOR(IORConfig{
		Machine: Franklin(), Tasks: 1024, Reps: 5, Seed: 7,
		Mode: TraceMode | ProfileMode,
	})
	p, err := ProfileOf(run)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := SaveTrace(&traceBuf, run); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > traceBuf.Len()/4 {
		t.Errorf("profile %d B vs trace %d B: want at least 4x compression", buf.Len(), traceBuf.Len())
	}
	p2, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trace := Durations(run, OpWrite)
	prof := p2.Duration(OpWrite)
	if prof == nil {
		t.Fatal("write histogram missing from reloaded profile")
	}
	rel := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		d := a/b - 1
		if d < 0 {
			return -d
		}
		return d
	}
	if rel(prof.Mean(), trace.Mean()) > 0.15 {
		t.Errorf("profile mean %.2f vs trace mean %.2f", prof.Mean(), trace.Mean())
	}
	if rel(prof.Quantile(0.95), trace.Quantile(0.95)) > 0.25 {
		t.Errorf("profile p95 %.2f vs trace p95 %.2f", prof.Quantile(0.95), trace.Quantile(0.95))
	}
}
