package ensembleio

// Golden pinning for the workload DSL. The internal wldsl tests prove
// the spec ports byte-identical to the hand-coded runners *today*;
// these goldens pin every serialized artifact of the corpus across
// time, so an engine or interpreter change that shifts any byte of
// any encoding — trace, profile, telemetry, spans, Chrome export —
// fails loudly. Golden files store sizes and SHA-256 digests (the
// full artifacts would dwarf the repo); regenerate with:
//
//	go test -run TestWorkloadDSLGolden -update .

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// goldenWorkload is one pinned run: the spec file, its runtime knobs,
// and the digest of every artifact it serializes.
type goldenWorkload struct {
	Spec      string `json:"spec"`
	Machine   string `json:"machine"`
	Seed      int64  `json:"seed"`
	Faults    string `json:"faults,omitempty"`
	Telemetry bool   `json:"telemetry,omitempty"`

	Wall      string                  `json:"wall"`
	Events    int                     `json:"events"`
	Marks     int                     `json:"marks"`
	Artifacts map[string]goldenDigest `json:"artifacts"`
}

type goldenDigest struct {
	Bytes  int    `json:"bytes"`
	SHA256 string `json:"sha256"`
}

func goldenWorkloadCases() []goldenWorkload {
	const flaky = "testdata/scenarios/flaky-ost.json"
	cases := []goldenWorkload{
		{Spec: "ior-shared", Machine: "franklin", Seed: 7},
		{Spec: "ior-shared", Machine: "franklin", Seed: 7, Faults: flaky, Telemetry: true},
		{Spec: "ior-fpp", Machine: "franklin", Seed: 7},
		{Spec: "madbench", Machine: "jaguar", Seed: 7},
		{Spec: "madbench", Machine: "jaguar", Seed: 7, Faults: flaky, Telemetry: true},
		{Spec: "gcrm-baseline", Machine: "franklin", Seed: 7},
		{Spec: "gcrm-collective", Machine: "franklin", Seed: 7},
		{Spec: "gcrm-collective", Machine: "franklin", Seed: 7, Faults: flaky, Telemetry: true},
		{Spec: "gcrm-twostage", Machine: "franklin", Seed: 7},
		{Spec: "gcrm-aligned", Machine: "franklin", Seed: 7},
		{Spec: "gcrm-metaagg", Machine: "franklin", Seed: 7},
		{Spec: "checkpoint-bursty", Machine: "franklin", Seed: 7},
		{Spec: "checkpoint-bursty", Machine: "franklin", Seed: 7, Faults: flaky, Telemetry: true},
		{Spec: "mixed-rw", Machine: "franklin", Seed: 7},
	}
	return cases
}

func (g *goldenWorkload) label() string {
	l := g.Spec
	if g.Faults != "" {
		l += "-faulted"
	}
	if g.Telemetry {
		l += "-telemetry"
	}
	return l
}

func (g *goldenWorkload) machine(t *testing.T) Platform {
	t.Helper()
	switch g.Machine {
	case "franklin":
		return Franklin()
	case "jaguar":
		return Jaguar()
	}
	t.Fatalf("unknown machine %q", g.Machine)
	return Platform{}
}

// measure runs the case and digests every artifact encoding.
func (g *goldenWorkload) measure(t *testing.T) *goldenWorkload {
	t.Helper()
	spec, err := LoadWorkload(filepath.Join("testdata", "scenarios", "workloads", g.Spec+".json"))
	if err != nil {
		t.Fatalf("LoadWorkload: %v", err)
	}
	var scenario *Scenario
	if g.Faults != "" {
		if scenario, err = LoadScenario(g.Faults); err != nil {
			t.Fatalf("LoadScenario: %v", err)
		}
	}
	cfg := WorkloadRunConfig{
		Machine: g.machine(t), Seed: g.Seed, Faults: scenario, Telemetry: g.Telemetry,
	}
	run, err := RunWorkload(spec, cfg)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}

	arts := map[string][]byte{}
	var bin, jsonl bytes.Buffer
	if err := SaveTrace(&bin, run); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	if err := SaveTraceJSON(&jsonl, run); err != nil {
		t.Fatalf("SaveTraceJSON: %v", err)
	}
	arts["trace.bin"] = bin.Bytes()
	arts["trace.jsonl"] = jsonl.Bytes()

	pcfg := cfg
	pcfg.Mode = ProfileMode
	pcfg.Telemetry = false
	prun, err := RunWorkload(spec, pcfg)
	if err != nil {
		t.Fatalf("RunWorkload(profile): %v", err)
	}
	profile, err := ProfileOf(prun)
	if err != nil {
		t.Fatalf("ProfileOf: %v", err)
	}
	var pjson bytes.Buffer
	if err := SaveProfile(&pjson, profile); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	arts["profile.json"] = pjson.Bytes()

	if g.Telemetry {
		var met, spans, chrome bytes.Buffer
		if err := SaveTelemetry(&met, run); err != nil {
			t.Fatalf("SaveTelemetry: %v", err)
		}
		if err := SaveSpans(&spans, run); err != nil {
			t.Fatalf("SaveSpans: %v", err)
		}
		if err := SaveChromeTrace(&chrome, run); err != nil {
			t.Fatalf("SaveChromeTrace: %v", err)
		}
		arts["telemetry.json"] = met.Bytes()
		arts["spans.jsonl"] = spans.Bytes()
		arts["chrome.json"] = chrome.Bytes()
	}

	got := *g
	got.Wall = fmt.Sprintf("%v", run.Wall)
	got.Events = len(run.Collector.Events)
	got.Marks = len(run.Collector.Marks)
	got.Artifacts = make(map[string]goldenDigest, len(arts))
	for name, b := range arts {
		if len(b) == 0 {
			t.Fatalf("%s: empty %s; the golden pin would be vacuous", g.label(), name)
		}
		sum := sha256.Sum256(b)
		got.Artifacts[name] = goldenDigest{Bytes: len(b), SHA256: hex.EncodeToString(sum[:])}
	}
	return &got
}

func TestWorkloadDSLGolden(t *testing.T) {
	for _, gc := range goldenWorkloadCases() {
		t.Run(gc.label(), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "golden", "wldsl", gc.label()+".json")
			got := gc.measure(t)

			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d artifacts, %d events)", path, len(got.Artifacts), got.Events)
				return
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file %s — run `go test -run TestWorkloadDSLGolden -update .` to create it (%v)", path, err)
			}
			var want goldenWorkload
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if got.Wall != want.Wall {
				t.Errorf("wall drifted: got %s, golden %s", got.Wall, want.Wall)
			}
			if got.Events != want.Events || got.Marks != want.Marks {
				t.Errorf("trace shape drifted: got %d events / %d marks, golden %d / %d",
					got.Events, got.Marks, want.Events, want.Marks)
			}
			var names []string
			for name := range want.Artifacts {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				w, g := want.Artifacts[name], got.Artifacts[name]
				if g != w {
					t.Errorf("%s drifted: got %d bytes %s, golden %d bytes %s",
						name, g.Bytes, g.SHA256, w.Bytes, w.SHA256)
				}
			}
			if len(got.Artifacts) != len(want.Artifacts) {
				t.Errorf("artifact set drifted: got %d encodings, golden %d", len(got.Artifacts), len(want.Artifacts))
			}
		})
	}
}
