package ensembleio_test

// Pooled-object reuse regression. The simulator recycles Streams and
// write jobs through engine-owned free lists (see DESIGN.md §11); every
// free list is owned by a single Fabric or Client and dies with its
// run, so back-to-back runs in one process must be indistinguishable
// from runs in fresh processes. This suite pins that property: if a
// future change promotes any free list to package-global state (a
// sync.Pool, a shared scratch buffer), a run's bytes would depend on
// what ran before it in the process, and these comparisons break.

import (
	"bytes"
	"fmt"
	"testing"

	"ensembleio"
)

// serializeRun flattens a run into its persistent encodings — the
// binary trace and the JSONL trace — which together cover every event
// the simulator emitted.
func serializeRun(t *testing.T, run *ensembleio.Run) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := ensembleio.SaveTrace(&out, run); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	if err := ensembleio.SaveTraceJSON(&out, run); err != nil {
		t.Fatalf("SaveTraceJSON: %v", err)
	}
	fmt.Fprintf(&out, "wall=%v\n", run.Wall)
	return out.Bytes()
}

// poolingWorkloads returns one runner per workload family, each with a
// distinct shape (stream population, write-job mix, metadata pattern)
// so consecutive runs exercise the free lists at different sizes.
func poolingWorkloads() []struct {
	name string
	run  func() *ensembleio.Run
} {
	return []struct {
		name string
		run  func() *ensembleio.Run
	}{
		{"ior", func() *ensembleio.Run {
			return ensembleio.RunIOR(ensembleio.IORConfig{
				Machine: ensembleio.Franklin(), Tasks: 16, Reps: 2,
				BlockBytes: 32e6, TransferBytes: 8e6, Seed: 11,
			})
		}},
		{"madbench", func() *ensembleio.Run {
			return ensembleio.RunMADbench(ensembleio.MADbenchConfig{
				Machine: ensembleio.Jaguar(), Tasks: 36, Matrices: 2, Seed: 11,
			})
		}},
		{"gcrm", func() *ensembleio.Run {
			return ensembleio.RunGCRM(ensembleio.GCRMConfig{
				Machine: ensembleio.Franklin(), Tasks: 80, Seed: 11,
			})
		}},
	}
}

// TestPooledReuseAcrossRuns runs each workload once to record reference
// bytes, then cycles through all of them twice more in the same
// process and asserts every later run reproduces its reference
// byte-for-byte. Stale state leaking through a recycled Stream or
// write job — or any accidentally process-global pool — would make a
// run's output depend on the runs before it.
func TestPooledReuseAcrossRuns(t *testing.T) {
	workloads := poolingWorkloads()
	ref := make(map[string][]byte)
	for _, w := range workloads {
		ref[w.name] = serializeRun(t, w.run())
		if len(ref[w.name]) == 0 {
			t.Fatalf("%s: empty serialization; the reuse check is vacuous", w.name)
		}
	}
	for cycle := 1; cycle <= 2; cycle++ {
		for _, w := range workloads {
			got := serializeRun(t, w.run())
			if !bytes.Equal(got, ref[w.name]) {
				t.Errorf("cycle %d: %s diverged from its first-run bytes (%d vs %d bytes) — pooled state leaked between runs",
					cycle, w.name, len(got), len(ref[w.name]))
			}
		}
	}
}

// TestPooledReuseOrderIndependent reruns the interleaving in the
// opposite order. A pool keyed on anything process-wide would show up
// as an order dependence even if same-order repetition happens to
// reproduce.
func TestPooledReuseOrderIndependent(t *testing.T) {
	workloads := poolingWorkloads()
	ref := make(map[string][]byte)
	for _, w := range workloads {
		ref[w.name] = serializeRun(t, w.run())
	}
	for i := len(workloads) - 1; i >= 0; i-- {
		w := workloads[i]
		if got := serializeRun(t, w.run()); !bytes.Equal(got, ref[w.name]) {
			t.Errorf("reverse order: %s diverged from its first-run bytes — run output depends on run order", w.name)
		}
	}
}
