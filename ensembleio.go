// Package ensembleio reproduces "Parallel I/O Performance: From Events
// to Ensembles" (Uselton et al., IPDPS 2010) as a runnable system: a
// simulated Cray-XT-class machine with a Lustre-like parallel file
// system, an IPM-I/O-style tracing layer, the paper's three workloads
// (IOR, MADbench, GCRM), and — the core contribution — a statistical
// toolkit that analyses populations of I/O events as ensembles:
// histograms, moments, modes, order statistics and
// Law-of-Large-Numbers predictions.
//
// Quick start:
//
//	run := ensembleio.RunIOR(ensembleio.IORConfig{
//		Machine: ensembleio.Franklin(),
//		Tasks:   1024,
//		Reps:    5,
//	})
//	writes := ensembleio.Durations(run, ensembleio.OpWrite)
//	hist := ensembleio.NewHistogram(ensembleio.LinearBins(0, writes.Max()*1.01, 100))
//	hist.AddAll(writes)
//	for _, mode := range hist.Modes(ensembleio.ModeOpts{}) {
//		fmt.Printf("mode at %.1fs mass=%.2f\n", mode.Center, mode.Mass)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every reproduced figure.
package ensembleio

import (
	"io"

	"ensembleio/internal/sim"

	"ensembleio/internal/analysis"
	"ensembleio/internal/cascache"
	"ensembleio/internal/cluster"
	"ensembleio/internal/ensemble"
	"ensembleio/internal/ensemble/campaign"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/runpool"
	"ensembleio/internal/telemetry"
	"ensembleio/internal/tenancy"
	"ensembleio/internal/tracefmt"
	"ensembleio/internal/wldsl"
	"ensembleio/internal/workloads"
)

// Platform describes a machine and file-system behaviour profile.
type Platform = cluster.Profile

// Franklin returns the LBNL Cray XT4 profile (the paper's primary
// platform, exhibiting the strided read-ahead defect by default).
func Franklin() Platform { return cluster.Franklin() }

// FranklinPatched returns Franklin with the Lustre strided read-ahead
// patch of §IV-C installed.
func FranklinPatched() Platform {
	p := cluster.Franklin()
	p.PatchStridedReadahead = true
	return p
}

// Jaguar returns the ORNL XT4-partition profile.
func Jaguar() Platform { return cluster.Jaguar() }

// Workload configurations and runner entry points.
type (
	// IORConfig parametrizes the IOR micro-benchmark (§III).
	IORConfig = workloads.IORConfig
	// MADbenchConfig parametrizes the MADbench I/O kernel (§IV).
	MADbenchConfig = workloads.MADbenchConfig
	// GCRMConfig parametrizes the GCRM I/O kernel (§V).
	GCRMConfig = workloads.GCRMConfig
	// Run is a workload execution artifact.
	Run = workloads.Run
)

// RunIOR executes the IOR benchmark on the simulated machine.
func RunIOR(cfg IORConfig) *Run { return workloads.RunIOR(cfg) }

// RunMADbench executes the MADbench I/O kernel.
func RunMADbench(cfg MADbenchConfig) *Run { return workloads.RunMADbench(cfg) }

// RunGCRM executes the GCRM I/O kernel.
func RunGCRM(cfg GCRMConfig) *Run { return workloads.RunGCRM(cfg) }

// Fault injection (set a config's Faults field, or pass -faults
// scenario.json to the CLIs). Every fault is deterministic in virtual
// time: the same scenario and seed reproduce the same run bit-for-bit.
type (
	// Scenario is a named, JSON-decodable composition of faults.
	Scenario = faults.Scenario
	// Fault is one injectable degradation.
	Fault = faults.Fault
	// SlowOST scales one OST's service rate by a constant factor.
	SlowOST = faults.SlowOST
	// FlakyOST gives one OST periodic stall windows in virtual time.
	FlakyOST = faults.FlakyOST
	// SlowNodeLink caps one compute node's link rate.
	SlowNodeLink = faults.SlowNodeLink
	// MDSBrownout reduces metadata concurrency and fattens lock
	// revocation tails.
	MDSBrownout = faults.MDSBrownout
	// BackgroundBursts injects periodic competing fabric load.
	BackgroundBursts = faults.BackgroundBursts
)

// LoadScenario reads a fault scenario spec from a JSON file.
func LoadScenario(path string) (*Scenario, error) { return faults.Load(path) }

// ParseScenario reads a fault scenario spec from a reader.
func ParseScenario(r io.Reader) (*Scenario, error) { return faults.Parse(r) }

// CheckpointConfig parametrizes the generic compute/checkpoint cycle.
type CheckpointConfig = workloads.CheckpointConfig

// CheckpointResult is a checkpoint run with per-step I/O costs.
type CheckpointResult = workloads.CheckpointResult

// RunCheckpoint executes a compute/checkpoint cycle.
func RunCheckpoint(cfg CheckpointConfig) *CheckpointResult {
	return workloads.RunCheckpoint(cfg)
}

// Declarative workload DSL (internal/wldsl): JSON specs describing
// phases, per-rank op sequences, sizes, strides and collective
// buffering, compiled into deterministic sim programs.
type (
	// WorkloadSpec is a decoded workload description.
	WorkloadSpec = wldsl.Spec
	// WorkloadProgram is a compiled, runnable spec.
	WorkloadProgram = wldsl.Program
	// WorkloadRunConfig carries the runtime knobs a spec does not:
	// machine, seed, collection mode, faults, telemetry.
	WorkloadRunConfig = wldsl.RunConfig
)

// ParseWorkload decodes and validates a workload spec.
func ParseWorkload(r io.Reader) (*WorkloadSpec, error) { return wldsl.Parse(r) }

// LoadWorkload reads a workload spec from a JSON file.
func LoadWorkload(path string) (*WorkloadSpec, error) { return wldsl.Load(path) }

// EncodeWorkload writes a spec in the canonical encoding (indented
// JSON, struct field order, trailing newline) — a decode/encode
// fixpoint.
func EncodeWorkload(w io.Writer, s *WorkloadSpec) error { return wldsl.Encode(w, s) }

// CompileWorkload resolves a spec into a runnable program.
func CompileWorkload(s *WorkloadSpec) (*WorkloadProgram, error) { return wldsl.Compile(s) }

// RunWorkload compiles and executes a workload spec in one step.
func RunWorkload(s *WorkloadSpec, cfg WorkloadRunConfig) (*Run, error) {
	return wldsl.Run(s, cfg)
}

// GenerateWorkload returns a seeded pseudo-random valid workload spec
// drawn from the checked-in corpus's scenario families (for fuzzing
// the determinism suite).
func GenerateWorkload(seed int64) *WorkloadSpec { return wldsl.Generate(seed) }

// GenerateAdversarialWorkload returns a seeded spec from the
// generator's adversarial family directly: 32-64 ranks issuing tiny
// transfers (4 KiB - 256 KiB) that straddle the small-I/O threshold —
// the canonical noisy-neighbor shape for interference testing.
func GenerateAdversarialWorkload(seed int64) *WorkloadSpec { return wldsl.GenerateAdversarial(seed) }

// Multi-tenant co-scheduling (internal/tenancy): several declarative
// workloads share one platform — engine, fabric, lustre mount,
// metadata service — with staggered starts, per-tenant accounting, and
// LASSi-style interference analysis against automatically simulated
// solo baselines.
type (
	// Tenant is one co-scheduled workload instance (name, spec,
	// start offset).
	Tenant = tenancy.Tenant
	// TenancyConfig carries the session-wide runtime knobs.
	TenancyConfig = tenancy.Config
	// TenancyResult is a finished co-run: per-tenant artifacts plus
	// the merged telemetry stream.
	TenancyResult = tenancy.Result
	// TenantResult is one tenant's share of a co-run.
	TenantResult = tenancy.TenantResult
	// InterferenceConfig tunes the interference-metric thresholds.
	InterferenceConfig = analysis.InterferenceConfig
	// InterferenceReport is the LASSi-style analysis artifact:
	// per-tenant metrics, contention windows, victim/aggressor
	// ranking.
	InterferenceReport = analysis.InterferenceReport
	// InterferencePair is one ranked victim/aggressor finding.
	InterferencePair = analysis.InterferencePair
	// TenantMetrics is one tenant's share of a co-run.
	TenantMetrics = analysis.TenantMetrics
	// ContentionWindow is a span with two or more active tenants.
	ContentionWindow = analysis.ContentionWindow
)

// RunTenants executes a multi-tenant co-run on one shared platform.
func RunTenants(cfg TenancyConfig, tenants []Tenant) (*TenancyResult, error) {
	return tenancy.RunTenants(cfg, tenants)
}

// AnalyzeInterference simulates each tenant's solo baseline and
// computes the interference report for a finished co-run. Both the
// baselines and the report are deterministic functions of the inputs.
func AnalyzeInterference(cfg TenancyConfig, tenants []Tenant, res *TenancyResult, icfg InterferenceConfig) (*InterferenceReport, error) {
	return tenancy.Analyze(cfg, tenants, res, icfg)
}

// Trace event model (IPM-I/O).
type (
	// Event is one traced I/O call.
	Event = ipmio.Event
	// Op identifies the traced call type.
	Op = ipmio.Op
	// PhaseMark labels a phase boundary.
	PhaseMark = ipmio.PhaseMark
	// Collector aggregates trace events and online profiles.
	Collector = ipmio.Collector
)

// Traced operations.
const (
	OpOpen  = ipmio.OpOpen
	OpClose = ipmio.OpClose
	OpRead  = ipmio.OpRead
	OpWrite = ipmio.OpWrite
	OpSeek  = ipmio.OpSeek
	OpFsync = ipmio.OpFsync
)

// Collection modes.
const (
	TraceMode   = ipmio.TraceMode
	ProfileMode = ipmio.ProfileMode
	PatternMode = ipmio.PatternMode
)

// Access-pattern classification (the paper's future-work extension:
// online pattern detection feeding hints to the file system).
type (
	// Pattern classifies an access stream.
	Pattern = ipmio.Pattern
	// PatternSummary aggregates stream classifications for one op.
	PatternSummary = ipmio.PatternSummary
	// PatternDetector classifies access streams online.
	PatternDetector = ipmio.PatternDetector
)

// Stream classifications.
const (
	PatternUnknown    = ipmio.PatternUnknown
	PatternSequential = ipmio.PatternSequential
	PatternStrided    = ipmio.PatternStrided
	PatternRandom     = ipmio.PatternRandom
)

// DetectPatterns classifies every access stream of a traced run by
// replaying its events through the online detector.
func DetectPatterns(run *Run) *PatternDetector {
	pd := ipmio.NewPatternDetector()
	for _, e := range run.Collector.Events {
		pd.Observe(e)
	}
	return pd
}

// Ensemble statistics (the paper's core).
type (
	// Dataset is an ensemble of scalar observations.
	Dataset = ensemble.Dataset
	// Histogram is a streaming binned distribution.
	Histogram = ensemble.Histogram
	// Bins defines a histogram binning.
	Bins = ensemble.Bins
	// Mode is one detected distribution peak.
	Mode = ensemble.Mode
	// ModeOpts tunes peak detection.
	ModeOpts = ensemble.ModeOpts
	// Moments is a distribution moment summary.
	Moments = ensemble.Moments
)

// NewDataset wraps raw observations as an ensemble.
func NewDataset(xs []float64) *Dataset { return ensemble.NewDataset(xs) }

// NewHistogram returns an empty histogram over the binning.
func NewHistogram(b Bins) *Histogram { return ensemble.NewHistogram(b) }

// LinearBins returns n equal-width bins over [lo, hi).
func LinearBins(lo, hi float64, n int) Bins { return ensemble.LinearBins(lo, hi, n) }

// LogBins returns log-spaced bins (the paper's log-log histograms).
func LogBins(lo, hi float64, perDecade int) Bins { return ensemble.LogBins(lo, hi, perDecade) }

// KS returns the two-sample Kolmogorov-Smirnov distance.
func KS(a, b *Dataset) float64 { return ensemble.KS(a, b) }

// Wasserstein returns the earth-mover distance between two ensembles.
func Wasserstein(a, b *Dataset) float64 { return ensemble.Wasserstein(a, b) }

// GaussianKS scores how far an ensemble is from its fitted Gaussian.
func GaussianKS(d *Dataset) float64 { return ensemble.GaussianKS(d) }

// KDE is a Gaussian kernel density estimate — a binning-free second
// opinion for mode detection.
type KDE = ensemble.KDE

// NewKDE builds a kernel density estimate (bandwidth 0 selects
// Silverman's rule).
func NewKDE(d *Dataset, bandwidth float64) *KDE { return ensemble.NewKDE(d, bandwidth) }

// Summarize computes the full ensemble characterization: moments,
// modes with harmonic analysis, tail index and normality score.
func Summarize(d *Dataset) ensemble.Summary {
	return ensemble.Summarize(d, ensemble.SummaryOpts{})
}

// ExpectedMax estimates the expected slowest of n draws (Eq. 1's
// order-statistic view of barrier-synchronized phase time).
func ExpectedMax(h *Histogram, n int) float64 { return ensemble.ExpectedMax(h, n) }

// SplitPrediction predicts the slowest-task total when one transfer is
// split into k calls (the Fig. 2 Law-of-Large-Numbers effect).
func SplitPrediction(single *Dataset, k, nTasks int) float64 {
	return ensemble.SplitPrediction(single, k, nTasks)
}

// ConvolveK returns the distribution of the sum of k iid draws from a
// linearly binned histogram — the t_k construction of §III-A.
func ConvolveK(h *Histogram, k int) *Histogram { return ensemble.ConvolveK(h, k) }

// Durations extracts the duration ensemble of one op type from a run.
func Durations(run *Run, op Op) *Dataset {
	return run.Collector.Dataset(func(e Event) bool { return e.Op == op })
}

// DataWrites extracts size-normalized (seconds per MB) durations of
// data-class writes (above the small-I/O threshold), the normalization
// of the GCRM histograms.
func DataWrites(run *Run) *Dataset {
	return analysis.SecPerMB(run.Collector.Events, func(e Event) bool {
		return e.Op == OpWrite && e.Bytes > 64<<10
	})
}

// Analysis layer.
type (
	// Phase is a barrier-delimited slice of a run.
	Phase = analysis.Phase
	// Finding is one advisor diagnosis.
	Finding = analysis.Finding
	// Series is a sampled aggregate-rate time series.
	Series = analysis.Series
)

// Phases slices a run into its barrier-delimited phases.
func Phases(run *Run) []Phase {
	return analysis.Phases(run.Collector.Events, run.Collector.Marks, run.Wall)
}

// RateSeries computes the aggregate data-rate time series of a run for
// one op type (Figures 1b, 4b, 6b).
func RateSeries(run *Run, op Op, dt float64) Series {
	return analysis.RateSeries(run.Collector.Events, analysis.IsOp(op), sim.Duration(dt), run.Wall)
}

// TraceDiagram renders the run's trace raster (Figures 1a, 4a, 6a).
func TraceDiagram(run *Run, width, height int) string {
	return analysis.TraceDiagram(run.Collector.Events, run.Tasks, width, height, run.Wall)
}

// Diagnose inspects a run's trace for the bottleneck signatures of the
// paper's case studies and of the injectable faults, cross-checking the
// trace ensemble against the run's server-side per-OST counters.
func Diagnose(run *Run) []Finding {
	cfg := analysis.DiagnoseConfig{
		CoresPerNode: run.CoresPerNode,
		Marks:        run.Collector.Marks,
		Wall:         run.Wall,
	}
	for _, o := range run.FSStats.PerOST {
		cfg.OSTRates = append(cfg.OSTRates, analysis.OSTRate{MBps: o.MeanMBps(), MB: o.MB})
	}
	return analysis.Diagnose(run.Collector.Events, cfg)
}

// Gap is one idle interval of a rank between consecutive events.
type Gap = analysis.Gap

// RankActivity summarizes one rank's busy and exclusive-busy time.
type RankActivity = analysis.RankActivity

// Gaps returns each rank's idle intervals longer than minGap seconds.
func Gaps(run *Run, minGap float64) []Gap {
	return analysis.Gaps(run.Collector.Events, sim.Duration(minGap))
}

// RankActivities computes per-rank busy and exclusive-busy time.
func RankActivities(run *Run) []RankActivity {
	return analysis.RankActivities(run.Collector.Events)
}

// Serializer names the rank whose exclusive I/O activity dominates the
// run span (the Figure 6g single-rank bottleneck), if any.
func Serializer(run *Run) (rank int, frac float64, ok bool) {
	return analysis.Serializer(run.Collector.Events, 0.25)
}

// Reproducibility quantifies ensemble stability between two runs of
// the same experiment (KS distance; below 0.1 counts as reproducible).
func Reproducibility(a, b *Dataset) (ks float64, reproducible bool) {
	return analysis.Reproducibility(a, b)
}

// Comparison is a per-operation reproducibility report for two runs.
type Comparison = analysis.Comparison

// CompareRuns compares two runs' ensembles op by op against adaptive
// (sample-size-aware) KS thresholds.
func CompareRuns(a, b *Run) Comparison {
	return analysis.CompareEvents(a.Collector.Events, b.Collector.Events, 0, 0)
}

// Sweep drivers for the paper's iterated experiments.
type (
	// TransferPoint is one point of a Figure 2 transfer-size sweep.
	TransferPoint = workloads.TransferPoint
	// WriterPoint is one point of a §V writer-count sweep.
	WriterPoint = workloads.WriterPoint
)

// IORTransferSweep runs the Figure 2 splitting experiment. The
// independent seeded runs execute in parallel on all cores; the
// reduction is in submission order, so results are identical at any
// worker count.
func IORTransferSweep(base IORConfig, ks []int, seeds []int64) []TransferPoint {
	return workloads.IORTransferSweep(base, ks, seeds)
}

// IORTransferSweepJ is IORTransferSweep on at most workers OS workers
// (workers <= 0 means all cores, 1 means sequential).
func IORTransferSweepJ(base IORConfig, ks []int, seeds []int64, workers int) []TransferPoint {
	return workloads.IORTransferSweepJ(base, ks, seeds, workers)
}

// IORWriterSweep runs the §V writer-saturation experiment, averaging
// walls over the given seeds. Runs execute in parallel on all cores
// with an ordered reduction (results identical at any worker count).
func IORWriterSweep(prof Platform, counts []int, totalTransfers int, transferBytes int64, seeds []int64) []WriterPoint {
	return workloads.IORWriterSweep(prof, counts, totalTransfers, transferBytes, seeds)
}

// IORWriterSweepJ is IORWriterSweep on at most workers OS workers
// (workers <= 0 means all cores, 1 means sequential).
func IORWriterSweepJ(prof Platform, counts []int, totalTransfers int, transferBytes int64, seeds []int64, workers int) []WriterPoint {
	return workloads.IORWriterSweepJ(prof, counts, totalTransfers, transferBytes, seeds, workers)
}

// RunMany executes one workload per config element on up to workers
// OS workers (workers <= 0 means all cores) and returns the runs
// indexed by config — the deterministic fan-out/ordered-reduction
// primitive behind every multi-seed loop in the CLIs and examples.
// Each simulation still executes on its own single-goroutine-at-a-time
// engine, so any given config+seed is bit-reproducible regardless of
// the worker count.
func RunMany[C any](workers int, cfgs []C, run func(C) *Run) []*Run {
	return runpool.Map(workers, cfgs, func(_ int, c C) *Run { return run(c) })
}

// SaturationPoint locates the smallest writer count within slack of
// the best wall time in a writer sweep.
func SaturationPoint(points []WriterPoint, slack float64) (writers int, bestWall float64) {
	return workloads.SaturationPoint(points, slack)
}

// SaveTrace writes a run's trace in the compact binary format.
func SaveTrace(w io.Writer, run *Run) error {
	return tracefmt.WriteBinary(w, run.Collector.Events, run.Collector.Marks)
}

// SaveTraceJSON writes a run's trace as JSON lines.
func SaveTraceJSON(w io.Writer, run *Run) error {
	return tracefmt.WriteJSONL(w, run.Collector.Events, run.Collector.Marks)
}

// LoadTrace reads a binary trace.
func LoadTrace(r io.Reader) ([]Event, []PhaseMark, error) {
	return tracefmt.ReadBinary(r)
}

// LoadTraceJSON reads a JSONL trace.
func LoadTraceJSON(r io.Reader) ([]Event, []PhaseMark, error) {
	return tracefmt.ReadJSONL(r)
}

// Telemetry: the deterministic virtual-time observability layer. Set
// a workload config's Telemetry field to populate Run.Telemetry (the
// metric snapshot) and Run.Spans (phases, fault windows, per-rank I/O
// calls). Everything serialized here is a pure function of the run —
// byte-identical across repeats and worker counts.
type (
	// TelemetrySnapshot is a run's counters/gauges/histograms.
	TelemetrySnapshot = telemetry.Snapshot
	// Span is one virtual-time interval (category, name, rank).
	Span = telemetry.Span
)

// SaveTelemetry writes a run's telemetry snapshot as indented JSON.
func SaveTelemetry(w io.Writer, run *Run) error {
	return tracefmt.WriteMetrics(w, run.Telemetry)
}

// LoadTelemetry reads and validates a telemetry snapshot.
func LoadTelemetry(r io.Reader) (*TelemetrySnapshot, error) {
	return tracefmt.ReadMetrics(r)
}

// SaveSpans writes a run's spans in the compact JSONL span format.
func SaveSpans(w io.Writer, run *Run) error {
	return tracefmt.WriteSpans(w, run.Spans)
}

// SaveTelemetrySnapshot writes a bare telemetry snapshot — e.g. a
// multi-tenant session's merged stream — as indented JSON.
func SaveTelemetrySnapshot(w io.Writer, snap *TelemetrySnapshot) error {
	return tracefmt.WriteMetrics(w, snap)
}

// SaveSpanList writes a bare span list — e.g. a session's merged
// stream — in the compact JSONL span format.
func SaveSpanList(w io.Writer, spans []Span) error {
	return tracefmt.WriteSpans(w, spans)
}

// LoadSpans reads a span JSONL stream.
func LoadSpans(r io.Reader) ([]Span, error) { return tracefmt.ReadSpans(r) }

// SaveChromeTrace writes a run's spans as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func SaveChromeTrace(w io.Writer, run *Run) error {
	return tracefmt.WriteChromeTrace(w, run.Spans)
}

// ValidateChromeTrace schema-checks a Chrome trace-event stream
// against the subset SaveChromeTrace emits and returns the event
// count (the trace-smoke CI check).
func ValidateChromeTrace(r io.Reader) (int, error) {
	return tracefmt.ValidateChromeTrace(r)
}

// Progress receives sweep completion counts (done, total). It runs on
// the wall-clock side of the house: reporting never perturbs the
// simulated runs or their serialized artifacts.
type Progress = runpool.Progress

// StderrProgress returns a Progress rendering a single-line live
// meter (count, percent, rate, ETA) to w, typically os.Stderr.
func StderrProgress(w io.Writer, label string) Progress {
	//lint:allow(detflow) progress meters are host-side observability; the rendered rate/ETA never touches a run artifact
	return runpool.StderrProgress(w, label)
}

// RunManyProgress is RunMany with live completion reporting (nil
// progress disables it; results are unchanged either way).
func RunManyProgress[C any](workers int, cfgs []C, progress Progress, run func(C) *Run) []*Run {
	return runpool.MapProgress(workers, cfgs, progress, func(_ int, c C) *Run { return run(c) })
}

// IORTransferSweepProgress is IORTransferSweepJ with live completion
// reporting.
func IORTransferSweepProgress(base IORConfig, ks []int, seeds []int64, workers int, progress Progress) []TransferPoint {
	return workloads.IORTransferSweepProgress(base, ks, seeds, workers, progress)
}

// IORWriterSweepProgress is IORWriterSweepJ with live completion
// reporting.
func IORWriterSweepProgress(prof Platform, counts []int, totalTransfers int, transferBytes int64, seeds []int64, workers int, progress Progress) []WriterPoint {
	return workloads.IORWriterSweepProgress(prof, counts, totalTransfers, transferBytes, seeds, workers, progress)
}

// Profile is the persistent, distribution-only form of a profile-mode
// collection — "just enough to define the distribution" (§VI).
type Profile = tracefmt.Profile

// ProfileOf extracts the persistent profile from a profile-mode run.
func ProfileOf(run *Run) (*Profile, error) { return tracefmt.ProfileOf(run.Collector) }

// SaveProfile writes a profile as JSON.
func SaveProfile(w io.Writer, p *Profile) error { return tracefmt.WriteProfile(w, p) }

// LoadProfile reads a profile.
func LoadProfile(r io.Reader) (*Profile, error) { return tracefmt.ReadProfile(r) }

// Content-addressed run cache (internal/cascache): because every run
// is a pure function of (workload, platform, faults, seed) with
// byte-identical artifacts, full artifact sets are memoized under a
// canonical scenario key — run once, serve every identical request.

type (
	// CacheStore is the on-disk content-addressed artifact store plus
	// its in-process MRU layer.
	CacheStore = cascache.Store
	// CacheKey is a canonical scenario identity.
	CacheKey = cascache.Key
	// CacheStats is a snapshot of a store's hit/miss/byte counters.
	CacheStats = cascache.Stats
	// CacheArtifact is one named blob of a cached artifact set.
	CacheArtifact = cascache.Artifact
	// CacheMeta is the human-readable manifest summary stored with
	// every cached artifact set.
	CacheMeta = cascache.Meta
)

// OpenCache opens (creating if needed) the cache rooted at dir.
func OpenCache(dir string) (*CacheStore, error) { return cascache.Open(dir) }

// ScenarioCacheKey derives the canonical cache key of one workload
// run. Sim-path-irrelevant platform fields (AnalyticOff) are excluded:
// both sim paths produce — and are served — the same bytes.
func ScenarioCacheKey(spec *WorkloadSpec, prof Platform, sc *Scenario, seed int64) (CacheKey, error) {
	return cascache.ScenarioKey(spec, prof, sc, seed)
}

// CanonicalWorkloadBytes returns a workload spec's canonical encoding
// — the identity bytes cache keys are derived from.
func CanonicalWorkloadBytes(s *WorkloadSpec) ([]byte, error) { return wldsl.CanonicalBytes(s) }

// CanonicalScenario returns a fault scenario's canonical bytes (nil
// maps to "none") — the faults section of a cache key.
func CanonicalScenario(s *Scenario) ([]byte, error) { return faults.Canonical(s) }

// DiffCacheArtifacts compares two artifact sets byte for byte and
// reports the first divergence (nil when identical) — the check behind
// -cache-verify.
func DiffCacheArtifacts(served, fresh []CacheArtifact) error {
	return cascache.DiffArtifacts(served, fresh)
}

// Batch campaign runner (internal/ensemble/campaign): dedups a
// duplicate-heavy scenario grid against the cache and computes only
// the misses, with submission-order-stable results.

type (
	// CampaignEntry is one scenario of a campaign.
	CampaignEntry = campaign.Entry
	// CampaignOptions configures a campaign run.
	CampaignOptions = campaign.Options
	// CampaignResult is one entry's outcome.
	CampaignResult = campaign.Result
	// CampaignStats summarizes a campaign's cache effectiveness.
	CampaignStats = campaign.Stats
)

// RunCampaign executes a campaign; see campaign.Run.
func RunCampaign(entries []CampaignEntry, opts CampaignOptions) ([]CampaignResult, CampaignStats, error) {
	return campaign.Run(entries, opts)
}
